#include "core/daop_engine.hpp"

#include <algorithm>
#include <cstdint>

#include "cache/arbiter.hpp"
#include "common/check.hpp"
#include "core/allocation.hpp"
#include "engines/session.hpp"
#include "tensor/ops.hpp"
#include "tensor/quant.hpp"

namespace daop::core {
namespace {

/// Pre-calculation plan produced at layer i for layer i+1.
struct NextLayerPlan {
  bool active = false;
  /// Whether this plan has already been charged a misprediction (the counter
  /// means "the predicted set missed a used expert", so it is charged at
  /// most once per plan even when several selected experts were missed).
  bool mispredicted = false;
  /// Result-arrival time (on GPU) per pre-calculated CPU expert; < 0 when
  /// the expert was not pre-calculated.
  std::vector<double> precalc_arrival;
  /// Graceful-degradation substitute per dropped CPU expert; -1 when none.
  std::vector<int> substitute;
  /// Tracing: span id of the prediction instant and of each expert's
  /// pre-calculation span (0 when tracing is off / not pre-calculated).
  std::uint64_t pred_span = 0;
  std::vector<std::uint64_t> precalc_span;

  explicit NextLayerPlan(int n_experts)
      : precalc_arrival(static_cast<std::size_t>(n_experts), -1.0),
        substitute(static_cast<std::size_t>(n_experts), -1),
        precalc_span(static_cast<std::size_t>(n_experts), 0) {}
};

/// Best GPU-resident expert by `scores`, excluding `exclude`; -1 if none.
int best_gpu_expert(const cache::Placement& placement, int layer,
                    std::span<const float> scores,
                    const std::vector<int>& exclude) {
  int best = -1;
  float best_score = 0.0F;
  for (int e = 0; e < placement.n_experts(); ++e) {
    if (!placement.on_gpu(layer, e)) continue;
    if (std::find(exclude.begin(), exclude.end(), e) != exclude.end()) continue;
    const float s = scores[static_cast<std::size_t>(e)];
    if (best < 0 || s > best_score) {
      best = e;
      best_score = s;
    }
  }
  return best;
}

/// DAOP session: Algorithm-1 prefill swaps, predictive pre-calculation, and
/// graceful degradation as policy over the session base's mechanics.
class DaopSession final : public engines::SequenceSession {
 public:
  DaopSession(std::string engine_name, const model::OpCosts& costs,
              const DaopConfig& config, const data::SequenceTrace& trace,
              const engines::SessionEnv& env, sim::FaultModel* fault,
              obs::SpanTracer* tracer, obs::Profiler* profiler,
              const cache::Placement& initial)
      : SequenceSession(std::move(engine_name), costs, trace, env, fault,
                        tracer, profiler),
        config_(config),
        placement_(initial),
        L_(costs.config().n_layers),
        E_(costs.config().n_experts),
        mig_cost_(costs.expert_migration()),
        // Decode-phase CPU expert cost; quantized when the EdgeMoE-style
        // extension is enabled (the CPU path is memory-bound).
        cpu_expert_cost_(
            config.cpu_quant_bits > 0
                ? costs.expert_cpu_scaled(
                      QuantSpec{config.cpu_quant_bits, config.cpu_quant_group}
                          .bytes_per_weight() /
                      costs.config().bytes_per_param)
                : costs.expert_cpu()),
        swap_ready_(static_cast<std::size_t>(L_) * E_, 0.0),
        window_(static_cast<std::size_t>(L_),
                std::vector<double>(static_cast<std::size_t>(E_), 0.0)) {}

 private:
  /// The shared placement under an arbiter, a private copy otherwise.
  cache::Placement& placement() {
    return arbiter() != nullptr ? arbiter()->placement() : placement_;
  }

  std::size_t sidx(int l, int e) const {
    return static_cast<std::size_t>(l) * static_cast<std::size_t>(E_) +
           static_cast<std::size_t>(e);
  }

  /// One expert migration under the robustness policies (bounded retries,
  /// deadline budget). Returns the weight-arrival time, or a negative value
  /// when the migration was aborted (the caller must then leave the expert
  /// on the CPU).
  double migrate(double issue, const char* tag) {
    const MigrationOutcome m = migrate_with_retry(
        issue, mig_cost_, tag, tag, engines::SpanName{tag},
        config_.max_migration_retries, config_.migration_deadline_factor,
        /*abort_when_exhausted=*/true);
    return m.aborted ? -1.0 : m.done;
  }

  /// Applies one Algorithm-1 swap decision: refuses up front when the
  /// victim is pinned by a concurrent session, otherwise migrates the
  /// incoming expert (which may itself abort) and commits the swap.
  /// Returns the weight-arrival time, or < 0 when nothing was swapped.
  double swap_in(int l, const SwapDecision& s, double issue,
                 const char* tag) {
    if (arbiter() != nullptr &&
        arbiter()->pinned_by_other(l, s.expert_out, request_id())) {
      ++counters_.pin_refusals;
      return -1.0;
    }
    const double done = migrate(issue, tag);
    if (done < 0.0) {
      // Deadline-abort / retries exhausted: the expert stays on the CPU
      // and decode degrades gracefully instead of stalling.
      ++counters_.migration_aborts;
      return -1.0;
    }
    if (arbiter() != nullptr) {
      if (!arbiter()->try_swap(l, s.expert_in, s.expert_out, request_id())) {
        // Pinned between the pre-check and the commit (cannot happen in a
        // deterministic interleave, but the arbiter owns the rule).
        ++counters_.pin_refusals;
        return -1.0;
      }
      publish_weight_ready(l, s.expert_in, done);
    } else {
      apply_swaps(placement(), l, {s});
    }
    return done;
  }

  void run_prefill() override {
    // Prefill: in-place hybrid execution + Algorithm 1 swaps whose
    // migrations ride the PCIe link underneath the remaining compute.
    const int np = trace().prompt_len;
    const auto counts = trace().activation_counts(data::Phase::Prefill);
    double last_swap_end = 0.0;
    for (int l = 0; l < L_; ++l) {
      const double nonmoe_end = tl().schedule(
          sim::Res::GpuStream, ready_, costs_.nonmoe_gpu_prefill(np),
          "prefill non-MoE");

      // Execute this layer where experts currently live; swaps adjust the
      // cache for the decode phase and ride the PCIe link concurrently.
      std::vector<bool> exec_on_gpu(static_cast<std::size_t>(E_));
      for (int e = 0; e < E_; ++e) {
        exec_on_gpu[static_cast<std::size_t>(e)] = placement().on_gpu(l, e);
      }

      if (config_.enable_seq_allocation) {
        const auto swaps = sequence_specific_swaps(
            counts[static_cast<std::size_t>(l)], placement(), l,
            config_.swap_in_out);
        for (const SwapDecision& s : swaps) {
          const double done = swap_in(l, s, nonmoe_end, "swap-in expert");
          if (done < 0.0) continue;
          last_swap_end = std::max(last_swap_end, done);
          ++counters_.prefill_swaps;
        }
      }

      double layer_end = nonmoe_end;
      for (int e = 0; e < E_; ++e) {
        const int tok = static_cast<int>(
            counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)]);
        if (tok == 0) continue;
        if (exec_on_gpu[static_cast<std::size_t>(e)]) {
          ++counters_.cache_hits;
          ++counters_.gpu_expert_execs;
          const double eready = shared_weight_gate(l, e, nonmoe_end);
          const double exec_end =
              tl().schedule(sim::Res::GpuStream, eready,
                            costs_.expert_gpu_prefill(tok), "prefill expert");
          if (tracing()) {
            tspan(engines::tracks::kExpertGpu, "prefill expert",
                  tl().last_start(), exec_end);
          }
          note_expert_exec(l, e, /*on_gpu=*/true, tl().last_start(), exec_end);
          layer_end = std::max(layer_end, exec_end);
        } else {
          ++counters_.cache_misses;
          layer_end = std::max(
              layer_end,
              cpu_expert(nonmoe_end, tok, costs_.expert_cpu_prefill(tok), l,
                         e));
        }
      }
      ready_ = layer_end;
    }
    prefill_end_ = ready_;
    // The decode configuration requires all swapped-in weights to be
    // resident.
    ready_ = std::max(ready_, last_swap_end);
  }

  void run_decode_token(int t) override {
    const model::ModelConfig& cfg = costs_.config();
    const int ctx = trace().prompt_len + t;
    NextLayerPlan plan(E_);  // produced at layer l-1 for layer l
    for (int l = 0; l < L_; ++l) {
      const double nonmoe_end = tl().schedule(
          sim::Res::GpuStream, ready_, costs_.nonmoe_gpu(ctx), "non-MoE");

      const data::TokenRouting& tok = trace().at(data::Phase::Decode, l, t);
      std::vector<int> selected = topk_indices(tok.scores, cfg.top_k);
      if (tracing()) {
        tinstant(engines::tracks::kGate, "gate L" + std::to_string(l),
                 nonmoe_end);
      }
      // Adaptive expert skipping (extension): confident tokens keep only
      // their top-1 expert.
      if (config_.skip_top1_margin > 0.0 && selected.size() >= 2) {
        std::vector<float> w(selected.size());
        softmax_subset(tok.scores, selected, w);
        if (w[0] >= config_.skip_top1_margin) {
          counters_.skipped_experts +=
              static_cast<long long>(selected.size()) - 1;
          selected.resize(1);
        }
      }

      double layer_end = nonmoe_end;
      std::vector<int> exclude = selected;  // fallbacks must be fresh experts
      for (int e : selected) {
        window_[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)] +=
            1.0;
        if (placement().on_gpu(l, e)) {
          ++counters_.cache_hits;
          ++counters_.gpu_expert_execs;
          pin_shared(l, e);
          // Experts swapped in mid-decode are usable once their weights
          // arrive (no-op when decode re-allocation is off).
          const double eready = shared_weight_gate(
              l, e, std::max(nonmoe_end, swap_ready_[sidx(l, e)]));
          const double exec_end = tl().schedule(sim::Res::GpuStream, eready,
                                                costs_.expert_gpu(),
                                                "GPU expert");
          if (tracing()) {
            tspan(engines::tracks::kExpertGpu, "GPU expert",
                  tl().last_start(), exec_end);
          }
          note_expert_exec(l, e, /*on_gpu=*/true, tl().last_start(), exec_end);
          layer_end = std::max(layer_end, exec_end);
          continue;
        }
        ++counters_.cache_misses;
        const auto ei = static_cast<std::size_t>(e);
        if (plan.active && plan.precalc_arrival[ei] >= 0.0) {
          // Pre-calculated on CPU from the previous layer's hidden states;
          // normally just wait for the result (usually already arrived).
          // Under the stale-discard policy a result landing too late (e.g.
          // the CPU pool was stolen by a co-running app) is dropped in
          // favour of the best GPU-resident substitute with exact inputs.
          const double arrival = plan.precalc_arrival[ei];
          int fb = -1;
          if (config_.stale_precalc_factor > 0.0 &&
              arrival > nonmoe_end + config_.stale_precalc_factor *
                                         costs_.expert_gpu()) {
            fb = best_gpu_expert(placement(), l, tok.scores, exclude);
          }
          if (fb >= 0) {
            ++counters_.stale_precalcs;
            ++counters_.degradations;
            ++counters_.gpu_expert_execs;
            exclude.push_back(fb);
            if (tracing()) {
              const std::uint64_t d = tinstant(
                  engines::tracks::kPrecalc,
                  "pre-calc discard E" + std::to_string(e), nonmoe_end);
              tflow(plan.precalc_span[ei], d, "stale");
            }
            const double exec_end =
                tl().schedule(sim::Res::GpuStream, nonmoe_end,
                              costs_.expert_gpu(), "stale fallback");
            if (tracing()) {
              tspan(engines::tracks::kExpertGpu, "stale fallback",
                    tl().last_start(), exec_end);
            }
            note_expert_exec(l, fb, /*on_gpu=*/true, tl().last_start(),
                             exec_end);
            layer_end = std::max(layer_end, exec_end);
          } else {
            if (tracing()) {
              const std::uint64_t c = tinstant(
                  engines::tracks::kPrecalc,
                  "pre-calc commit E" + std::to_string(e), arrival);
              tflow(plan.precalc_span[ei], c, "commit");
            }
            layer_end = std::max(layer_end, arrival);
          }
        } else if (plan.active && plan.substitute[ei] >= 0) {
          // Graceful degradation planned at prediction time: the GPU
          // substitute executes with exact current inputs.
          ++counters_.gpu_expert_execs;
          exclude.push_back(plan.substitute[ei]);
          const double exec_end =
              tl().schedule(sim::Res::GpuStream, nonmoe_end,
                            costs_.expert_gpu(), "substitute expert");
          if (tracing()) {
            tspan(engines::tracks::kExpertGpu, "substitute expert",
                  tl().last_start(), exec_end);
          }
          note_expert_exec(l, plan.substitute[ei], /*on_gpu=*/true,
                           tl().last_start(), exec_end);
          layer_end = std::max(layer_end, exec_end);
        } else if (plan.active) {
          // Misprediction: a selected CPU expert was not pre-calculated.
          // Charged once per plan — the counter's unit is "predicted set
          // missed a used expert", not "missed expert", so a top-k gate
          // missing both experts is still one misprediction.
          if (!plan.mispredicted) {
            plan.mispredicted = true;
            ++counters_.mispredictions;
          }
          int fb = -1;
          if (config_.mispredict_policy ==
              MispredictPolicy::GracefulFallback) {
            fb = best_gpu_expert(placement(), l, tok.scores, exclude);
          }
          if (fb >= 0) {
            ++counters_.degradations;
            ++counters_.gpu_expert_execs;
            exclude.push_back(fb);
            const double exec_end =
                tl().schedule(sim::Res::GpuStream, nonmoe_end,
                              costs_.expert_gpu(), "fallback expert");
            if (tracing()) {
              tspan(engines::tracks::kExpertGpu, "fallback expert",
                    tl().last_start(), exec_end);
            }
            note_expert_exec(l, fb, /*on_gpu=*/true, tl().last_start(),
                             exec_end);
            layer_end = std::max(layer_end, exec_end);
          } else {
            layer_end = std::max(
                layer_end, cpu_expert(nonmoe_end, 1, cpu_expert_cost_, l, e));
          }
        } else {
          // Early layers (or precalc disabled): in-place hybrid execution.
          layer_end = std::max(
              layer_end, cpu_expert(nonmoe_end, 1, cpu_expert_cost_, l, e));
        }
      }

      // ---- Plan pre-calculation for layer l+1 using this layer's hidden
      // states (available at nonmoe_end). ----
      plan = NextLayerPlan(E_);
      const int nl = l + 1;
      if (config_.enable_precalc && nl < L_ &&
          nl >= config_.min_predict_layer) {
        const data::TokenRouting& ntok =
            trace().at(data::Phase::Decode, nl, t);
        if (!ntok.pred_scores.empty()) {
          plan.active = true;
          ++counters_.predictions;
          if (tracing()) {
            plan.pred_span =
                tinstant(engines::tracks::kPrediction,
                         "predict L" + std::to_string(nl), nonmoe_end);
          }
          std::vector<int> predicted =
              topk_indices(ntok.pred_scores, cfg.top_k);
          // Under adaptive skipping, confident predictions only need their
          // top-1 expert pre-calculated.
          if (config_.skip_top1_margin > 0.0 && predicted.size() >= 2) {
            std::vector<float> w(predicted.size());
            softmax_subset(ntok.pred_scores, predicted, w);
            if (w[0] >= config_.skip_top1_margin) predicted.resize(1);
          }

          std::vector<int> pred_cpu;
          for (int e : predicted) {
            if (!placement().on_gpu(nl, e)) pred_cpu.push_back(e);
          }

          // Graceful degradation: if every predicted expert sits on the
          // CPU, replace the lowest-scored one with the best GPU-resident
          // expert.
          if (config_.enable_degradation &&
              static_cast<int>(pred_cpu.size()) == cfg.top_k &&
              cfg.top_k >= 2) {
            int drop = pred_cpu.back();  // topk_indices is score-descending
            const int sub = best_gpu_expert(placement(), nl,
                                            ntok.pred_scores, predicted);
            if (sub >= 0) {
              plan.substitute[static_cast<std::size_t>(drop)] = sub;
              pred_cpu.pop_back();
              ++counters_.degradations;
            }
          }

          // Pre-calculate the remaining predicted CPU experts from this
          // layer's non-MoE hidden states.
          for (int e : pred_cpu) {
            const engines::CpuExpertTimes ct = engines::cpu_expert_roundtrip(
                tl(), costs_, nonmoe_end, 1, cpu_expert_cost_, counters_,
                {"precalc acts", "precalc CPU expert", "precalc result"});
            note_expert_exec(nl, e, /*on_gpu=*/false, ct.cpu_start,
                             ct.cpu_end);
            const double arrival = ct.result_arrival;
            plan.precalc_arrival[static_cast<std::size_t>(e)] = arrival;
            if (tracing()) {
              const std::uint64_t ps =
                  tspan(engines::tracks::kPrecalc,
                        "pre-calc L" + std::to_string(nl) + " E" +
                            std::to_string(e),
                        ct.acts_out_start, arrival);
              plan.precalc_span[static_cast<std::size_t>(e)] = ps;
              tflow(plan.pred_span, ps, "pre-calc");
            }
          }
        }
      }

      ready_ = layer_end;
    }
  }

  void post_token(int t) override {
    // Decode re-allocation (extension): every N tokens, re-run Algorithm 1
    // over the trailing window so the cache follows within-sequence drift.
    // On a SHARED placement the cache is prefill-frozen (paper §IV-A applies
    // per-sequence allocation at prefill only): concurrent sessions have
    // conflicting trailing windows, and letting each re-steer the shared
    // cache every interval thrashes the very experts its peers pinned.
    if (shared() || config_.decode_realloc_interval <= 0 ||
        (t + 1) % config_.decode_realloc_interval != 0) {
      return;
    }
    for (int l = 0; l < L_; ++l) {
      const auto swaps = sequence_specific_swaps(
          window_[static_cast<std::size_t>(l)], placement(), l,
          config_.swap_in_out);
      for (const SwapDecision& s : swaps) {
        const double done = swap_in(l, s, ready_, "decode swap-in");
        if (done < 0.0) continue;
        swap_ready_[sidx(l, s.expert_in)] = done;
        ++counters_.decode_swaps;
      }
      std::fill(window_[static_cast<std::size_t>(l)].begin(),
                window_[static_cast<std::size_t>(l)].end(), 0.0);
    }
  }

  // ---- Warm-restart checkpointing: everything run_decode_token/post_token
  // consult beyond the base class — the swap-arrival gates and the trailing
  // activation window. NextLayerPlan is per-token-local and never crosses a
  // decode_step boundary, so it is not state.
  bool save_policy_state(recovery::ByteWriter& w) const override {
    w.i32(L_);
    w.i32(E_);
    for (const double v : swap_ready_) w.f64(v);
    for (const auto& row : window_) {
      for (const double v : row) w.f64(v);
    }
    return true;
  }

  bool load_policy_state(recovery::ByteReader& r, double shift) override {
    const int L = r.i32();
    const int E = r.i32();
    if (!r.ok() || L != L_ || E != E_) return false;
    std::vector<double> swap_ready(swap_ready_.size());
    for (double& v : swap_ready) {
      v = r.f64();
      if (v != 0.0) v += shift;  // 0.0 is the "never swapped in" sentinel
    }
    std::vector<std::vector<double>> window = window_;
    for (auto& row : window) {
      for (double& v : row) v = r.f64();
    }
    if (!r.ok()) return false;
    swap_ready_ = std::move(swap_ready);
    window_ = std::move(window);
    return true;
  }

  const cache::Placement* effective_placement() const override {
    return arbiter() != nullptr ? &arbiter()->placement() : &placement_;
  }

  cache::Placement* private_placement() override { return &placement_; }

  /// By value: open_session may hand each session a per-session variant of
  /// the engine config (degradation directives disable pre-calc /
  /// migrations for one session without touching the engine).
  const DaopConfig config_;
  cache::Placement placement_;
  const int L_;
  const int E_;
  const double mig_cost_;
  const double cpu_expert_cost_;
  /// Per-expert weight-arrival gates for experts swapped in mid-decode
  /// (decode re-allocation extension state).
  std::vector<double> swap_ready_;
  /// Trailing-window activation counts for decode re-allocation.
  std::vector<std::vector<double>> window_;
};

}  // namespace

DaopEngine::DaopEngine(const model::OpCosts& costs, DaopConfig config)
    : Engine(costs), config_(config) {
  validate_config(config_);
}

std::string DaopEngine::name() const {
  if (config_.enable_seq_allocation && config_.enable_precalc &&
      config_.enable_degradation) {
    return "DAOP";
  }
  std::string n = "DAOP[";
  n += config_.enable_seq_allocation ? "alloc," : "-alloc,";
  n += config_.enable_precalc ? "precalc," : "-precalc,";
  n += config_.enable_degradation ? "degrade]" : "-degrade]";
  return n;
}

std::unique_ptr<engines::SequenceSession> DaopEngine::open_session(
    const data::SequenceTrace& trace, const cache::Placement& initial,
    const engines::SessionEnv& env) {
  const model::ModelConfig& cfg = costs_.config();
  DAOP_CHECK_EQ(initial.n_layers(), cfg.n_layers);
  DAOP_CHECK_EQ(initial.n_experts(), cfg.n_experts);
  // Degradation directives (overload plane) narrow THIS session's policy;
  // the engine config — and the engine's reported name — are unchanged.
  DaopConfig session_cfg = config_;
  if (env.degrade_no_speculation) session_cfg.enable_precalc = false;
  if (env.degrade_no_migrations) {
    session_cfg.enable_seq_allocation = false;
    session_cfg.decode_realloc_interval = 0;
  }
  return std::make_unique<DaopSession>(name(), costs_, session_cfg, trace,
                                       env, fault_model_, tracer_, profiler_,
                                       initial);
}

std::unique_ptr<engines::Engine> make_daop(const model::OpCosts& costs,
                                           DaopConfig config) {
  return std::make_unique<DaopEngine>(costs, config);
}

}  // namespace daop::core
