#include "core/allocation.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace daop::core {

std::vector<SwapDecision> sequence_specific_swaps(
    std::span<const double> token_counts, const cache::Placement& placement,
    int layer, double swap_in_out) {
  const int E = placement.n_experts();
  DAOP_CHECK_EQ(static_cast<int>(token_counts.size()), E);
  DAOP_CHECK_GE(swap_in_out, 1.0);

  // Line 5: SwapNum = 0.5 * number of experts.
  const int swap_num = E / 2;

  // Lines 6-8: most active CPU experts, least active GPU experts.
  std::vector<int> cpu = placement.cpu_experts(layer);
  std::vector<int> gpu = placement.gpu_experts(layer);
  auto by_count_desc = [&](int a, int b) {
    return token_counts[static_cast<std::size_t>(a)] >
           token_counts[static_cast<std::size_t>(b)];
  };
  auto by_count_asc = [&](int a, int b) {
    return token_counts[static_cast<std::size_t>(a)] <
           token_counts[static_cast<std::size_t>(b)];
  };
  std::stable_sort(cpu.begin(), cpu.end(), by_count_desc);
  std::stable_sort(gpu.begin(), gpu.end(), by_count_asc);

  const int pairs = std::min<int>(
      {swap_num, static_cast<int>(cpu.size()), static_cast<int>(gpu.size())});

  // Lines 9-13: zip hot with cold; swap when HotProb >= SwapInOut * ColdProb.
  std::vector<SwapDecision> swaps;
  for (int i = 0; i < pairs; ++i) {
    const int hot = cpu[static_cast<std::size_t>(i)];
    const int cold = gpu[static_cast<std::size_t>(i)];
    const double hot_count = token_counts[static_cast<std::size_t>(hot)];
    const double cold_count = token_counts[static_cast<std::size_t>(cold)];
    if (hot_count >= swap_in_out * cold_count && hot_count > 0.0) {
      swaps.push_back(SwapDecision{hot, cold});
    }
  }
  return swaps;
}

void apply_swaps(cache::Placement& placement, int layer,
                 const std::vector<SwapDecision>& swaps) {
  for (const SwapDecision& s : swaps) {
    placement.swap(layer, s.expert_in, s.expert_out);
  }
}

}  // namespace daop::core
