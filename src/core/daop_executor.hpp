// DAOP — functional (real-numerics) plane.
//
// Runs the same policy brain as DaopEngine (Algorithm 1 placement, gate-ahead
// prediction, pre-calculation on stale hidden states, graceful degradation)
// against a FunctionalModel, so its effect on model OUTPUTS is measurable.
// This is the executor behind the paper's accuracy results (Tables V & VI):
//  - prefill is numerically exact (placement only moves weights, §IV-B), so
//    prefill-dependent tasks match the official model;
//  - decode approximations (stale inputs for pre-calculated CPU experts,
//    degradation substitutions, mispredict fallbacks) perturb outputs more
//    as the ECR shrinks and as routing drifts within a sequence.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cache/placement.hpp"
#include "core/daop_config.hpp"
#include "model/functional_model.hpp"
#include "model/quantized_expert.hpp"

namespace daop::core {

struct FunctionalRunStats {
  long long decode_expert_uses = 0;     ///< expert slots filled during decode
  long long exact_execs = 0;            ///< true expert, exact input
  long long stale_input_execs = 0;      ///< pre-calculated (stale input)
  long long degradations = 0;           ///< planned substitutions
  long long mispredict_fallbacks = 0;   ///< fallback substitutions
  long long mispredict_recomputes = 0;  ///< exact recomputes on mispredict
  long long prefill_swaps = 0;          ///< Algorithm 1 swaps applied
  long long decode_swaps = 0;           ///< decode re-allocation swaps
                                        ///< (extension, off by default)
  long long quantized_execs = 0;        ///< CPU executions run quantized
                                        ///< (cpu_quant_bits extension)
  long long skipped_experts = 0;        ///< experts skipped by the adaptive
                                        ///< top-1 margin (extension)
};

class DaopFunctionalExecutor {
 public:
  DaopFunctionalExecutor(const model::FunctionalModel& model,
                         DaopConfig config = {});

  /// Prefill + greedy decode under DAOP approximations. `initial` is the
  /// §IV-A calibrated placement (copied; Algorithm 1 adjusts the copy).
  /// `bias` is the dataset conditioner (must match the official run's).
  ///
  /// When `teacher` is non-empty (length >= n_gen) the decoder is
  /// teacher-forced: it consumes `teacher[g]` at step g instead of its own
  /// prediction, while still RETURNING its own per-step argmax predictions.
  /// Comparing the result against the official generation then measures
  /// per-step approximation error without compounding divergence — the
  /// primary accuracy proxy for Table VI.
  std::vector<int> generate(std::span<const int> prompt, int n_gen,
                            const cache::Placement& initial,
                            const model::GateBias& bias = nullptr,
                            FunctionalRunStats* stats = nullptr,
                            std::span<const int> teacher = {}) const;

 private:
  /// Runs expert (layer, e) on input h, quantized when the expert executes
  /// on the CPU and cpu_quant_bits is enabled.
  void run_expert(int layer, int expert, bool on_cpu,
                  std::span<const float> h, std::span<float> out,
                  FunctionalRunStats& stats) const;

  const model::FunctionalModel& model_;
  DaopConfig config_;
  std::unique_ptr<model::QuantizedExpertSet> quantized_;  ///< null when off
};

}  // namespace daop::core
