#include "core/daop_config.hpp"

#include "common/check.hpp"

namespace daop::core {

void validate_config(const DaopConfig& config) {
  DAOP_CHECK_MSG(config.swap_in_out >= 1.0,
                 "DaopConfig.swap_in_out must be >= 1.0 (a CPU expert must "
                 "beat the GPU candidate to justify a swap), got "
                     << config.swap_in_out);
  DAOP_CHECK_MSG(config.min_predict_layer >= 1,
                 "DaopConfig.min_predict_layer must be >= 1 (layer 0 has no "
                 "previous block to predict from), got "
                     << config.min_predict_layer);
  DAOP_CHECK_MSG(config.cpu_quant_bits == 0 || config.cpu_quant_bits == 2 ||
                     config.cpu_quant_bits == 4 || config.cpu_quant_bits == 8,
                 "DaopConfig.cpu_quant_bits must be one of {0, 2, 4, 8}, got "
                     << config.cpu_quant_bits);
  DAOP_CHECK_MSG(config.cpu_quant_group > 0,
                 "DaopConfig.cpu_quant_group must be > 0, got "
                     << config.cpu_quant_group);
  DAOP_CHECK_MSG(config.decode_realloc_interval >= 0,
                 "DaopConfig.decode_realloc_interval must be >= 0 (0 "
                 "disables decode re-allocation), got "
                     << config.decode_realloc_interval);
  DAOP_CHECK_MSG(
      config.skip_top1_margin >= 0.0 && config.skip_top1_margin <= 1.0,
      "DaopConfig.skip_top1_margin must be in [0, 1] (0 disables "
      "skipping), got "
          << config.skip_top1_margin);
  DAOP_CHECK_MSG(config.migration_deadline_factor >= 0.0,
                 "DaopConfig.migration_deadline_factor must be >= 0 (0 "
                 "disables deadline-abort), got "
                     << config.migration_deadline_factor);
  DAOP_CHECK_MSG(config.max_migration_retries >= 0,
                 "DaopConfig.max_migration_retries must be >= 0, got "
                     << config.max_migration_retries);
  DAOP_CHECK_MSG(config.stale_precalc_factor >= 0.0,
                 "DaopConfig.stale_precalc_factor must be >= 0 (0 disables "
                 "stale-result discard), got "
                     << config.stale_precalc_factor);
}

}  // namespace daop::core
