// Algorithm 1: sequence-specific expert allocation (paper §IV-B).
//
// After the gate of each block resolves during prefill, the most active
// CPU-resident experts are paired with the least active GPU-resident
// experts; a pair is swapped when the CPU expert's token count exceeds the
// GPU expert's by the SwapInOut threshold. Implemented as a pure function so
// both execution planes and the unit tests share one copy of the logic.
#pragma once

#include <span>
#include <vector>

#include "cache/placement.hpp"

namespace daop::core {

struct SwapDecision {
  int expert_in = -1;   ///< hot expert moving CPU -> GPU
  int expert_out = -1;  ///< cold expert moving GPU -> CPU
};

/// Computes the swaps Algorithm 1 performs for one layer.
/// `token_counts[e]` = tokens routed to expert e in this layer during
/// prefill (the expert's "activity level"). Does not mutate the placement.
std::vector<SwapDecision> sequence_specific_swaps(
    std::span<const double> token_counts, const cache::Placement& placement,
    int layer, double swap_in_out);

/// Applies the returned decisions to the placement.
void apply_swaps(cache::Placement& placement, int layer,
                 const std::vector<SwapDecision>& swaps);

}  // namespace daop::core
