#include "data/gate_bias.hpp"

#include <cmath>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace daop::data {

model::GateBias make_gate_bias(const WorkloadSpec& spec, int n_layers,
                               int n_experts, std::uint64_t seed,
                               int seq_index, int prompt_len,
                               int max_positions) {
  DAOP_CHECK_GT(n_layers, 0);
  DAOP_CHECK_GT(n_experts, 0);
  DAOP_CHECK_GT(prompt_len, 0);
  DAOP_CHECK_GE(max_positions, prompt_len);

  Rng rng = Rng(seed).fork(static_cast<std::uint64_t>(seq_index));
  const auto E = static_cast<std::size_t>(n_experts);
  const double skew = spec.seq_skew_sigma;
  const double rho = spec.layer_rho;
  const double shift = spec.phase_shift_sigma;

  // Same generative model as TraceGenerator (minus per-token noise, which
  // the functional model supplies through its real gate on real hidden
  // states). Precompute the full [layer][pos][expert] field.
  std::vector<std::vector<double>> pref(static_cast<std::size_t>(n_layers),
                                        std::vector<double>(E));
  for (int l = 0; l < n_layers; ++l) {
    auto& p = pref[static_cast<std::size_t>(l)];
    if (l == 0) {
      for (auto& v : p) v = skew * rng.normal();
    } else {
      const auto& prev = pref[static_cast<std::size_t>(l - 1)];
      const double fresh = std::sqrt(1.0 - rho * rho);
      for (std::size_t e = 0; e < E; ++e) {
        p[e] = rho * prev[e] + fresh * skew * rng.normal();
      }
    }
  }
  std::vector<std::vector<double>> dpref(static_cast<std::size_t>(n_layers),
                                         std::vector<double>(E));
  const double keep = std::sqrt(std::max(0.0, 1.0 - shift * shift));
  for (int l = 0; l < n_layers; ++l) {
    for (std::size_t e = 0; e < E; ++e) {
      dpref[static_cast<std::size_t>(l)][e] =
          keep * pref[static_cast<std::size_t>(l)][e] +
          shift * skew * rng.normal();
    }
  }

  auto table = std::make_shared<std::vector<float>>(
      static_cast<std::size_t>(n_layers) * static_cast<std::size_t>(max_positions) * E);
  auto at = [n_experts, max_positions](int l, int pos) {
    return (static_cast<std::size_t>(l) * static_cast<std::size_t>(max_positions) +
            static_cast<std::size_t>(pos)) *
           static_cast<std::size_t>(n_experts);
  };

  std::vector<std::vector<double>> drift(static_cast<std::size_t>(n_layers),
                                         std::vector<double>(E, 0.0));
  for (int pos = 0; pos < max_positions; ++pos) {
    const bool is_prefill = pos < prompt_len;
    for (int l = 0; l < n_layers; ++l) {
      float* dst = table->data() + at(l, pos);
      if (is_prefill) {
        for (std::size_t e = 0; e < E; ++e) {
          dst[e] = static_cast<float>(pref[static_cast<std::size_t>(l)][e]);
        }
      } else {
        auto& d = drift[static_cast<std::size_t>(l)];
        for (std::size_t e = 0; e < E; ++e) {
          d[e] = spec.drift_rho * d[e] + spec.drift_sigma * skew * rng.normal();
          dst[e] = static_cast<float>(dpref[static_cast<std::size_t>(l)][e] + d[e]);
        }
      }
    }
  }

  return [table, at, n_layers, n_experts, max_positions](
             int layer, int pos, std::span<float> logits) {
    DAOP_CHECK(layer >= 0 && layer < n_layers);
    DAOP_CHECK(pos >= 0 && pos < max_positions);
    DAOP_CHECK_EQ(static_cast<int>(logits.size()), n_experts);
    const float* src = table->data() + at(layer, pos);
    for (int e = 0; e < n_experts; ++e) logits[static_cast<std::size_t>(e)] += src[e];
  };
}

std::vector<int> make_prompt(int vocab_size, int len, std::uint64_t seed,
                             int seq_index) {
  DAOP_CHECK_GT(vocab_size, 0);
  DAOP_CHECK_GT(len, 0);
  Rng rng = Rng(seed ^ 0xABCDEF1234567ULL).fork(static_cast<std::uint64_t>(seq_index));
  std::vector<int> out(static_cast<std::size_t>(len));
  for (auto& t : out) t = rng.uniform_int(0, vocab_size - 1);
  return out;
}

}  // namespace daop::data
