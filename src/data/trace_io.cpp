#include "data/trace_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.hpp"

namespace daop::data {
namespace {

void write_scores(std::ostream& os, const std::vector<float>& scores) {
  for (float s : scores) os << ' ' << s;
}

std::vector<float> read_scores(std::istringstream& line, int n,
                               const char* what) {
  std::vector<float> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    DAOP_CHECK_MSG(static_cast<bool>(line >> out[static_cast<std::size_t>(i)]),
                   "truncated " << what << " vector");
  }
  return out;
}

}  // namespace

void save_trace(const SequenceTrace& trace, std::ostream& os) {
  DAOP_CHECK_GT(trace.n_layers(), 0);
  // Enough digits for bit-exact float round trips.
  os << std::setprecision(std::numeric_limits<float>::max_digits10);
  os << "daop-trace v1\n";
  os << "header " << trace.n_layers() << ' ' << trace.n_experts << ' '
     << trace.top_k << ' ' << trace.prompt_len << ' ' << trace.gen_len
     << '\n';
  for (int l = 0; l < trace.n_layers(); ++l) {
    for (int t = 0; t < trace.prompt_len; ++t) {
      const TokenRouting& tr = trace.at(Phase::Prefill, l, t);
      os << "P " << l << ' ' << t;
      write_scores(os, tr.scores);
      os << '\n';
    }
  }
  for (int l = 0; l < trace.n_layers(); ++l) {
    for (int t = 0; t < trace.gen_len; ++t) {
      const TokenRouting& tr = trace.at(Phase::Decode, l, t);
      os << "D " << l << ' ' << t;
      write_scores(os, tr.scores);
      if (!tr.pred_scores.empty()) {
        os << " |";
        write_scores(os, tr.pred_scores);
      }
      os << '\n';
    }
  }
}

SequenceTrace load_trace(std::istream& is) {
  std::string line;
  DAOP_CHECK_MSG(static_cast<bool>(std::getline(is, line)) &&
                     line == "daop-trace v1",
                 "missing 'daop-trace v1' magic line");

  SequenceTrace trace;
  int n_layers = 0;
  bool have_header = false;
  long long prefill_cells = 0;
  long long decode_cells = 0;

  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "header") {
      DAOP_CHECK_MSG(!have_header, "duplicate header");
      DAOP_CHECK_MSG(
          static_cast<bool>(ls >> n_layers >> trace.n_experts >>
                            trace.top_k >> trace.prompt_len >> trace.gen_len),
          "malformed header");
      DAOP_CHECK_GT(n_layers, 0);
      DAOP_CHECK_GT(trace.n_experts, 0);
      DAOP_CHECK(trace.top_k > 0 && trace.top_k <= trace.n_experts);
      DAOP_CHECK_GT(trace.prompt_len, 0);
      DAOP_CHECK_GE(trace.gen_len, 0);
      trace.prefill.resize(static_cast<std::size_t>(n_layers));
      trace.decode.resize(static_cast<std::size_t>(n_layers));
      for (int l = 0; l < n_layers; ++l) {
        trace.prefill[static_cast<std::size_t>(l)].tokens.resize(
            static_cast<std::size_t>(trace.prompt_len));
        trace.decode[static_cast<std::size_t>(l)].tokens.resize(
            static_cast<std::size_t>(trace.gen_len));
      }
      have_header = true;
      continue;
    }
    DAOP_CHECK_MSG(have_header, "data line before header");
    DAOP_CHECK_MSG(kind == "P" || kind == "D",
                   "unknown record kind '" << kind << "'");
    int l = -1;
    int t = -1;
    DAOP_CHECK_MSG(static_cast<bool>(ls >> l >> t), "malformed record indices");
    DAOP_CHECK_MSG(l >= 0 && l < n_layers, "layer out of range: " << l);
    auto& layers = kind == "P" ? trace.prefill : trace.decode;
    const int max_t = kind == "P" ? trace.prompt_len : trace.gen_len;
    DAOP_CHECK_MSG(t >= 0 && t < max_t, "token out of range: " << t);
    TokenRouting& cell =
        layers[static_cast<std::size_t>(l)].tokens[static_cast<std::size_t>(t)];
    DAOP_CHECK_MSG(cell.scores.empty(),
                   "duplicate cell " << kind << " " << l << " " << t);
    cell.scores = read_scores(ls, trace.n_experts, "scores");
    if (kind == "P") {
      ++prefill_cells;
    } else {
      ++decode_cells;
      std::string sep;
      if (ls >> sep) {
        DAOP_CHECK_MSG(sep == "|", "expected '|' before predictions");
        cell.pred_scores = read_scores(ls, trace.n_experts, "pred");
      }
    }
  }
  DAOP_CHECK_MSG(have_header, "empty trace (no header)");
  DAOP_CHECK_MSG(prefill_cells ==
                     static_cast<long long>(n_layers) * trace.prompt_len,
                 "missing prefill cells: " << prefill_cells);
  DAOP_CHECK_MSG(decode_cells ==
                     static_cast<long long>(n_layers) * trace.gen_len,
                 "missing decode cells: " << decode_cells);
  return trace;
}

void save_trace_file(const SequenceTrace& trace, const std::string& path) {
  std::ofstream f(path);
  DAOP_CHECK_MSG(static_cast<bool>(f), "cannot open for write: " << path);
  save_trace(trace, f);
  DAOP_CHECK_MSG(static_cast<bool>(f), "write failed: " << path);
}

SequenceTrace load_trace_file(const std::string& path) {
  std::ifstream f(path);
  DAOP_CHECK_MSG(static_cast<bool>(f), "cannot open for read: " << path);
  return load_trace(f);
}

}  // namespace daop::data
