// Synthesizes routing traces matching a WorkloadSpec's statistics.
//
// Generative model, per sequence:
//   pref[0]   = skew * z0,  z0 ~ N(0, I_E)
//   pref[l]   = rho * pref[l-1] + sqrt(1-rho^2) * skew * z_l      (layer field)
//   prefill score(l, t) = pref[l] + noise * eps(l, t)
//   decode pref'[l]     = sqrt(1-shift^2) * pref[l] + shift * w_l (phase shift,
//                         normalized so decode preferences keep prefill scale)
//   decode score(l, t)  = pref'[l] + drift(l, t) + noise * eps
//   drift(l, t)         = drift(l, t-1) + drift_sigma * skew * xi (random walk)
//   pred score(l, t)    = score(l, t) + pred_noise(l) * eps'      (gate-ahead
//                         prediction fidelity; layer-dependent per Fig. 5)
//
// Everything is deterministic in (spec, model dims, seed, sequence index).
#pragma once

#include <cstdint>

#include "data/routing_trace.hpp"
#include "data/workload.hpp"

namespace daop::data {

class TraceGenerator {
 public:
  TraceGenerator(WorkloadSpec spec, int n_layers, int n_experts, int top_k,
                 std::uint64_t seed);

  const WorkloadSpec& spec() const { return spec_; }

  /// Generates the trace for sequence `seq_index`; deterministic per index.
  SequenceTrace generate(int seq_index) const;

  /// Generates with explicit lengths (overriding the spec's defaults).
  SequenceTrace generate(int seq_index, int prompt_len, int gen_len) const;

 private:
  WorkloadSpec spec_;
  int n_layers_;
  int n_experts_;
  int top_k_;
  std::uint64_t seed_;
};

}  // namespace daop::data
