// Workload specifications: statistical models of dataset routing behaviour.
//
// The paper's observations ①-③ are statements about routing-trace
// statistics of real datasets (C4, MATH, GSM8K, TriviaQA, ...). We cannot
// ship those datasets or the 46B models that route them, so each dataset is
// characterized by the handful of statistics the paper's design actually
// depends on, and traces are synthesized to match:
//
//  - seq_skew_sigma:     per-sequence expert-preference strength. Produces
//                        observation ①: near-uniform activation across a
//                        dataset, strongly skewed within one sequence.
//  - token_noise_sigma:  per-token routing variability around the
//                        sequence preference.
//  - phase_shift_sigma:  how much decode preferences deviate from prefill
//                        preferences (controls Table II's ~90% similarity).
//  - drift_sigma/drift_rho: mean-reverting (Ornstein-Uhlenbeck) drift of
//                        preferences across decode steps; models regime
//                        changes within a sequence (read problem -> compute
//                        -> format answer). GSM8K's diverse in-sequence
//                        activations (paper §VI-B) map to a high sigma.
//  - layer_rho:          correlation of preferences across adjacent layers.
//  - pred_noise_early/late: gate-ahead prediction fidelity below/at-or-above
//                        layer 4 (controls Fig. 5's curve, avg ≈ 84%).
#pragma once

#include <string>
#include <vector>

namespace daop::data {

struct WorkloadSpec {
  std::string name;

  double seq_skew_sigma = 1.2;
  double token_noise_sigma = 1.0;
  double phase_shift_sigma = 0.35;
  double drift_sigma = 0.0;
  double drift_rho = 0.90;  ///< per-token persistence of the drift state
  double layer_rho = 0.6;
  double pred_noise_early = 1.0;
  double pred_noise_late = 0.30;

  int prompt_len = 256;
  int gen_len = 256;
};

// ---- Dataset presets used across the paper's evaluation ----

WorkloadSpec c4();          ///< web corpus; balanced marginals (Fig. 4)
WorkloadSpec math_ds();     ///< MATH; slightly skewed
WorkloadSpec gsm8k();       ///< math word problems; high in-sequence drift
WorkloadSpec triviaqa();    ///< world knowledge; stable activations
WorkloadSpec alpaca();      ///< instruction following (Fig. 5 datasets)
WorkloadSpec bbh();         ///< BBH aggregate
WorkloadSpec truthfulqa();  ///< generation task scored with ROUGE
WorkloadSpec sharegpt_calibration();  ///< calibration set for §IV-A init

/// All evaluation presets (excludes the calibration set).
std::vector<WorkloadSpec> all_eval_workloads();

}  // namespace daop::data
