// Functional-plane dataset conditioner.
//
// Builds a model::GateBias that adds a WorkloadSpec-shaped bias field to the
// functional model's gate logits. The bias is a pure function of
// (layer, position) — precomputed, not call-order dependent — so the DAOP
// executor can evaluate gates out of order (e.g. the gate-ahead prediction)
// and still see exactly the same conditioning as the official executor.
#pragma once

#include <cstdint>

#include "data/workload.hpp"
#include "model/functional_model.hpp"

namespace daop::data {

/// Creates the conditioner for one sequence. `prompt_len` splits the
/// position axis into prefill (stable preference) and decode (shifted
/// preference + random-walk drift); `max_positions` bounds the precomputed
/// table (prompt_len + generation length).
model::GateBias make_gate_bias(const WorkloadSpec& spec, int n_layers,
                               int n_experts, std::uint64_t seed,
                               int seq_index, int prompt_len,
                               int max_positions);

/// Synthetic prompt token ids, deterministic in (seed, seq_index).
std::vector<int> make_prompt(int vocab_size, int len, std::uint64_t seed,
                             int seq_index);

}  // namespace daop::data
