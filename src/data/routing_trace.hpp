// Routing traces: the per-token, per-layer gate information that the
// performance-plane engines schedule against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace daop::data {

/// Inference phase.
enum class Phase { Prefill, Decode };

/// Gate information for one token at one layer.
struct TokenRouting {
  /// True gate logits, length n_experts.
  std::vector<float> scores;
  /// One-layer-ahead predicted logits for THIS layer (produced while the
  /// previous layer executed). Empty for layer 0, where no earlier layer
  /// exists to predict from. Decode phase only.
  std::vector<float> pred_scores;
};

/// All tokens of one phase at one layer.
struct LayerTokens {
  std::vector<TokenRouting> tokens;
};

/// Complete routing trace of a single sequence through a model.
struct SequenceTrace {
  int n_experts = 0;
  int top_k = 0;
  int prompt_len = 0;
  int gen_len = 0;

  /// Indexed [layer][token].
  std::vector<LayerTokens> prefill;
  std::vector<LayerTokens> decode;

  int n_layers() const { return static_cast<int>(decode.size()); }

  const TokenRouting& at(Phase phase, int layer, int token) const;

  /// Top-k expert ids for a token (descending true score).
  std::vector<int> selected(Phase phase, int layer, int token) const;

  /// Top-k expert ids by predicted score; empty when no prediction exists.
  std::vector<int> predicted(int layer, int token) const;

  /// Activation-count matrix for a phase: out[layer][expert] = number of
  /// tokens routed to that expert (paper observation ②'s P / D matrices).
  std::vector<std::vector<double>> activation_counts(Phase phase) const;

  /// Activation counts restricted to decode tokens [t0, t1).
  std::vector<std::vector<double>> decode_window_counts(int t0, int t1) const;
};

}  // namespace daop::data
