#include "data/workload.hpp"

namespace daop::data {

WorkloadSpec c4() {
  WorkloadSpec w;
  w.name = "C4";
  w.seq_skew_sigma = 0.60;
  w.token_noise_sigma = 1.0;
  w.phase_shift_sigma = 0.72;
  w.drift_sigma = 0.015;
  w.layer_rho = 0.6;
  return w;
}

WorkloadSpec math_ds() {
  WorkloadSpec w = c4();
  w.name = "MATH";
  w.seq_skew_sigma = 0.65;
  w.phase_shift_sigma = 0.70;
  w.drift_sigma = 0.020;
  return w;
}

WorkloadSpec gsm8k() {
  WorkloadSpec w = c4();
  w.name = "GSM8K";
  // Chain-of-thought math: expert usage drifts within a sequence as the
  // solution moves from reading the problem to arithmetic to formatting.
  w.name = "GSM8K";
  w.seq_skew_sigma = 0.62;
  w.phase_shift_sigma = 0.50;
  w.drift_sigma = 0.34;
  w.drift_rho = 0.96;
  return w;
}

WorkloadSpec triviaqa() {
  WorkloadSpec w = c4();
  w.name = "TriviaQA";
  w.seq_skew_sigma = 0.68;
  w.phase_shift_sigma = 0.50;
  w.drift_sigma = 0.008;
  return w;
}

WorkloadSpec alpaca() {
  WorkloadSpec w = c4();
  w.name = "Alpaca";
  w.seq_skew_sigma = 0.62;
  w.phase_shift_sigma = 0.52;
  w.drift_sigma = 0.015;
  return w;
}

WorkloadSpec bbh() {
  WorkloadSpec w = c4();
  w.name = "BBH";
  w.seq_skew_sigma = 0.65;
  w.drift_sigma = 0.020;
  return w;
}

WorkloadSpec truthfulqa() {
  WorkloadSpec w = c4();
  w.name = "TruthfulQA";
  w.seq_skew_sigma = 0.62;
  w.drift_sigma = 0.015;
  return w;
}

WorkloadSpec sharegpt_calibration() {
  WorkloadSpec w = c4();
  w.name = "ShareGPT (calibration)";
  w.seq_skew_sigma = 0.58;
  w.drift_sigma = 0.015;
  return w;
}

std::vector<WorkloadSpec> all_eval_workloads() {
  return {c4(),    math_ds(),    gsm8k(), triviaqa(),
          alpaca(), bbh(), truthfulqa()};
}

}  // namespace daop::data
