#include "data/routing_trace.hpp"

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace daop::data {

const TokenRouting& SequenceTrace::at(Phase phase, int layer,
                                      int token) const {
  const auto& layers = phase == Phase::Prefill ? prefill : decode;
  DAOP_CHECK(layer >= 0 && layer < static_cast<int>(layers.size()));
  const auto& lt = layers[static_cast<std::size_t>(layer)];
  DAOP_CHECK(token >= 0 && token < static_cast<int>(lt.tokens.size()));
  return lt.tokens[static_cast<std::size_t>(token)];
}

std::vector<int> SequenceTrace::selected(Phase phase, int layer,
                                         int token) const {
  const TokenRouting& tr = at(phase, layer, token);
  return topk_indices(tr.scores, top_k);
}

std::vector<int> SequenceTrace::predicted(int layer, int token) const {
  const TokenRouting& tr = at(Phase::Decode, layer, token);
  if (tr.pred_scores.empty()) return {};
  return topk_indices(tr.pred_scores, top_k);
}

std::vector<std::vector<double>> SequenceTrace::activation_counts(
    Phase phase) const {
  const auto& layers = phase == Phase::Prefill ? prefill : decode;
  std::vector<std::vector<double>> counts(
      layers.size(), std::vector<double>(static_cast<std::size_t>(n_experts), 0.0));
  for (std::size_t l = 0; l < layers.size(); ++l) {
    for (std::size_t t = 0; t < layers[l].tokens.size(); ++t) {
      for (int e : topk_indices(layers[l].tokens[t].scores, top_k)) {
        counts[l][static_cast<std::size_t>(e)] += 1.0;
      }
    }
  }
  return counts;
}

std::vector<std::vector<double>> SequenceTrace::decode_window_counts(
    int t0, int t1) const {
  DAOP_CHECK_LE(0, t0);
  DAOP_CHECK_LE(t0, t1);
  std::vector<std::vector<double>> counts(
      decode.size(), std::vector<double>(static_cast<std::size_t>(n_experts), 0.0));
  for (std::size_t l = 0; l < decode.size(); ++l) {
    const int hi = std::min<int>(t1, static_cast<int>(decode[l].tokens.size()));
    for (int t = t0; t < hi; ++t) {
      for (int e :
           topk_indices(decode[l].tokens[static_cast<std::size_t>(t)].scores,
                        top_k)) {
        counts[l][static_cast<std::size_t>(e)] += 1.0;
      }
    }
  }
  return counts;
}

}  // namespace daop::data
