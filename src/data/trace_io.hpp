// Routing-trace serialization.
//
// The performance plane consumes SequenceTrace objects; nothing requires
// them to be synthetic. This text format lets users dump per-token gate
// scores from a real model (e.g. a Transformers hook on Mixtral's router)
// and replay them through every engine in this repository.
//
// Format (line-oriented, '#' comments, whitespace-separated):
//   daop-trace v1
//   header <n_layers> <n_experts> <top_k> <prompt_len> <gen_len>
//   P <layer> <token> <score_0> ... <score_{E-1}>
//   D <layer> <token> <score_0> ... <score_{E-1}> [| <pred_0> ... <pred_{E-1}>]
// All (phase, layer, token) cells must be present exactly once.
#pragma once

#include <iosfwd>
#include <string>

#include "data/routing_trace.hpp"

namespace daop::data {

void save_trace(const SequenceTrace& trace, std::ostream& os);
/// Throws CheckError on malformed input (missing cells, bad counts, ...).
SequenceTrace load_trace(std::istream& is);

/// File wrappers; throw CheckError on I/O failure.
void save_trace_file(const SequenceTrace& trace, const std::string& path);
SequenceTrace load_trace_file(const std::string& path);

}  // namespace daop::data
