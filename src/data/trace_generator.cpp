#include "data/trace_generator.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace daop::data {

TraceGenerator::TraceGenerator(WorkloadSpec spec, int n_layers, int n_experts,
                               int top_k, std::uint64_t seed)
    : spec_(std::move(spec)),
      n_layers_(n_layers),
      n_experts_(n_experts),
      top_k_(top_k),
      seed_(seed) {
  DAOP_CHECK_GT(n_layers_, 0);
  DAOP_CHECK_GT(n_experts_, 0);
  DAOP_CHECK_GT(top_k_, 0);
  DAOP_CHECK_LE(top_k_, n_experts_);
  DAOP_CHECK_GE(spec_.layer_rho, 0.0);
  DAOP_CHECK_LT(spec_.layer_rho, 1.0);
}

SequenceTrace TraceGenerator::generate(int seq_index) const {
  return generate(seq_index, spec_.prompt_len, spec_.gen_len);
}

SequenceTrace TraceGenerator::generate(int seq_index, int prompt_len,
                                       int gen_len) const {
  DAOP_CHECK_GT(prompt_len, 0);
  DAOP_CHECK_GE(gen_len, 0);
  Rng rng = Rng(seed_).fork(static_cast<std::uint64_t>(seq_index));

  const auto E = static_cast<std::size_t>(n_experts_);
  const double skew = spec_.seq_skew_sigma;
  const double rho = spec_.layer_rho;
  const double shift = spec_.phase_shift_sigma;

  SequenceTrace tr;
  tr.n_experts = n_experts_;
  tr.top_k = top_k_;
  tr.prompt_len = prompt_len;
  tr.gen_len = gen_len;
  tr.prefill.resize(static_cast<std::size_t>(n_layers_));
  tr.decode.resize(static_cast<std::size_t>(n_layers_));

  // Layer-correlated sequence preference field.
  std::vector<std::vector<double>> pref(static_cast<std::size_t>(n_layers_),
                                        std::vector<double>(E));
  for (int l = 0; l < n_layers_; ++l) {
    auto& p = pref[static_cast<std::size_t>(l)];
    if (l == 0) {
      for (auto& v : p) v = skew * rng.normal();
    } else {
      const auto& prev = pref[static_cast<std::size_t>(l - 1)];
      const double fresh = std::sqrt(1.0 - rho * rho);
      for (std::size_t e = 0; e < E; ++e) {
        p[e] = rho * prev[e] + fresh * skew * rng.normal();
      }
    }
  }

  // Decode-phase preferences: correlated with prefill, scale-preserving.
  std::vector<std::vector<double>> dpref(static_cast<std::size_t>(n_layers_),
                                         std::vector<double>(E));
  const double keep = std::sqrt(std::max(0.0, 1.0 - shift * shift));
  for (int l = 0; l < n_layers_; ++l) {
    for (std::size_t e = 0; e < E; ++e) {
      dpref[static_cast<std::size_t>(l)][e] =
          keep * pref[static_cast<std::size_t>(l)][e] +
          shift * skew * rng.normal();
    }
  }

  // Prefill tokens.
  for (int l = 0; l < n_layers_; ++l) {
    auto& lt = tr.prefill[static_cast<std::size_t>(l)];
    lt.tokens.resize(static_cast<std::size_t>(prompt_len));
    for (int t = 0; t < prompt_len; ++t) {
      auto& tok = lt.tokens[static_cast<std::size_t>(t)];
      tok.scores.resize(E);
      for (std::size_t e = 0; e < E; ++e) {
        tok.scores[e] = static_cast<float>(
            pref[static_cast<std::size_t>(l)][e] +
            spec_.token_noise_sigma * rng.normal());
      }
    }
  }

  // Decode tokens with random-walk drift and gate-ahead predictions.
  std::vector<std::vector<double>> drift(static_cast<std::size_t>(n_layers_),
                                         std::vector<double>(E, 0.0));
  for (int l = 0; l < n_layers_; ++l) {
    tr.decode[static_cast<std::size_t>(l)].tokens.resize(
        static_cast<std::size_t>(gen_len));
  }
  for (int t = 0; t < gen_len; ++t) {
    for (int l = 0; l < n_layers_; ++l) {
      auto& d = drift[static_cast<std::size_t>(l)];
      for (std::size_t e = 0; e < E; ++e) {
        d[e] = spec_.drift_rho * d[e] + spec_.drift_sigma * skew * rng.normal();
      }
      auto& tok =
          tr.decode[static_cast<std::size_t>(l)].tokens[static_cast<std::size_t>(t)];
      tok.scores.resize(E);
      for (std::size_t e = 0; e < E; ++e) {
        tok.scores[e] = static_cast<float>(
            dpref[static_cast<std::size_t>(l)][e] + d[e] +
            spec_.token_noise_sigma * rng.normal());
      }
      if (l >= 1) {
        // A prediction for this layer, formed while layer l-1 executed.
        const double pn =
            l < 4 ? spec_.pred_noise_early : spec_.pred_noise_late;
        tok.pred_scores.resize(E);
        for (std::size_t e = 0; e < E; ++e) {
          tok.pred_scores[e] =
              tok.scores[e] + static_cast<float>(pn * rng.normal());
        }
      }
    }
  }
  return tr;
}

}  // namespace daop::data
