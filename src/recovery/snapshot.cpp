#include "recovery/snapshot.hpp"

namespace daop::recovery {
namespace {

// "daopckpt" — 8 ASCII bytes, stable across platforms.
constexpr std::uint8_t kMagic[8] = {'d', 'a', 'o', 'p', 'c', 'k', 'p', 't'};
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 8;  // magic, version, len, fnv

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void ByteWriter::bytes(const std::uint8_t* data, std::size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

bool ByteReader::take(void* out, std::size_t n) {
  if (!ok_ || n > n_ - pos_) {
    ok_ = false;
    std::memset(out, 0, n);
    return false;
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return true;
}

std::uint8_t ByteReader::u8() {
  std::uint8_t v = 0;
  take(&v, 1);
  return v;
}

std::uint32_t ByteReader::u32() {
  std::uint8_t b[4] = {0, 0, 0, 0};
  take(b, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  std::uint8_t b[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  take(b, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0;
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  if (!ok_ || n > remaining()) {
    ok_ = false;
    return std::string();
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::uint8_t> seal(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> blob;
  blob.reserve(kHeaderSize + payload.size());
  blob.insert(blob.end(), kMagic, kMagic + 8);
  ByteWriter hdr;
  hdr.u32(kSnapshotVersion);
  hdr.u64(static_cast<std::uint64_t>(payload.size()));
  hdr.u64(fnv1a64(payload.data(), payload.size()));
  blob.insert(blob.end(), hdr.data().begin(), hdr.data().end());
  blob.insert(blob.end(), payload.begin(), payload.end());
  return blob;
}

std::optional<std::vector<std::uint8_t>> unseal(
    const std::vector<std::uint8_t>& blob) {
  if (blob.size() < kHeaderSize) return std::nullopt;
  if (std::memcmp(blob.data(), kMagic, 8) != 0) return std::nullopt;
  ByteReader hdr(blob.data() + 8, kHeaderSize - 8);
  const std::uint32_t version = hdr.u32();
  const std::uint64_t len = hdr.u64();
  const std::uint64_t fnv = hdr.u64();
  if (!hdr.ok() || version != kSnapshotVersion) return std::nullopt;
  // Torn write: the frame claims more payload than the blob carries (or a
  // resize appended garbage — the length must match exactly).
  if (len != blob.size() - kHeaderSize) return std::nullopt;
  const std::uint8_t* payload = blob.data() + kHeaderSize;
  if (fnv1a64(payload, static_cast<std::size_t>(len)) != fnv)
    return std::nullopt;
  return std::vector<std::uint8_t>(payload, payload + len);
}

void write_placement_image(ByteWriter& w, const PlacementImage& p) {
  w.i32(p.n_layers);
  w.i32(p.n_experts);
  for (std::int32_t c : p.capacity) w.i32(c);
  w.bytes(p.on_gpu.data(), p.on_gpu.size());
}

bool read_placement_image(ByteReader& r, PlacementImage* out) {
  out->n_layers = r.i32();
  out->n_experts = r.i32();
  if (!r.ok() || out->n_layers <= 0 || out->n_experts <= 0 ||
      out->n_layers > (1 << 16) || out->n_experts > (1 << 16)) {
    r.fail();
    return false;
  }
  const std::size_t cells = static_cast<std::size_t>(out->n_layers) *
                            static_cast<std::size_t>(out->n_experts);
  out->capacity.resize(static_cast<std::size_t>(out->n_layers));
  for (auto& c : out->capacity) c = r.i32();
  if (!r.ok() || cells > r.remaining()) {
    r.fail();
    return false;
  }
  out->on_gpu.resize(cells);
  for (auto& g : out->on_gpu) g = r.u8();
  return r.ok();
}

}  // namespace daop::recovery
