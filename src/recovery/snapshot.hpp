// Crash-consistent snapshot framing for warm-restart recovery (`daop-ckpt/1`).
//
// A checkpoint is a sealed byte blob: a fixed header (magic, version, payload
// length) followed by the payload and guarded by an FNV-1a 64 checksum over
// the payload bytes. The payload itself is produced by
// engines::SequenceSession::checkpoint() — this layer knows nothing about
// sessions; it only provides the deterministic little-endian encoding
// primitives and the seal/unseal validation boundary.
//
// Unsealing is the ONLY trust boundary for restore: torn writes are caught by
// the length field, bit corruption by the checksum (FNV-1a's state update is
// bijective in each input byte, so any single-byte change flips the digest).
// ByteReader is fail-flagged and bounds-checked — decoding an adversarial
// blob can fail, but never read out of bounds.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

namespace daop::recovery {

/// Format revision sealed into every snapshot header ("daop-ckpt/1").
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// FNV-1a 64-bit over `n` bytes.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n);

/// Append-only little-endian encoder for snapshot payloads.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(const std::string& s);
  void bytes(const std::uint8_t* data, std::size_t n);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked decoder. Every read past the end sets the fail flag and
/// returns a zero value; callers check ok() once at the end of a section.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t n) : data_(data), n_(n) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();

  bool ok() const { return ok_; }
  std::size_t remaining() const { return n_ - pos_; }
  /// Marks the stream failed (decode-level validation hooks into the same
  /// flag as bounds checks).
  void fail() { ok_ = false; }

 private:
  bool take(void* out, std::size_t n);

  const std::uint8_t* data_;
  std::size_t n_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Wraps a payload in the `daop-ckpt/1` frame: magic, version, payload
/// length, FNV-1a 64 checksum, payload bytes.
std::vector<std::uint8_t> seal(const std::vector<std::uint8_t>& payload);

/// Validates a sealed blob and returns the payload, or nullopt when the
/// magic/version mismatch, the blob is torn (length inconsistent), or the
/// checksum rejects. Never throws, never reads out of bounds.
std::optional<std::vector<std::uint8_t>> unseal(
    const std::vector<std::uint8_t>& blob);

/// Device-placement image carried inside a snapshot: enough to rebuild the
/// session's effective expert residency on a surviving node without any
/// dependency on live cache objects.
struct PlacementImage {
  int n_layers = 0;
  int n_experts = 0;
  std::vector<std::int32_t> capacity;  // per layer
  std::vector<std::uint8_t> on_gpu;    // row-major n_layers x n_experts

  bool gpu(int layer, int expert) const {
    return on_gpu[static_cast<std::size_t>(layer) *
                      static_cast<std::size_t>(n_experts) +
                  static_cast<std::size_t>(expert)] != 0;
  }
};

void write_placement_image(ByteWriter& w, const PlacementImage& p);
/// Decodes a placement image; returns false (and sets the reader's fail
/// flag) on malformed dimensions.
bool read_placement_image(ByteReader& r, PlacementImage* out);

}  // namespace daop::recovery
