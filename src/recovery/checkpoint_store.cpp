#include "recovery/checkpoint_store.hpp"

#include "common/check.hpp"
#include "recovery/snapshot.hpp"

namespace daop::recovery {

void CheckpointOptions::validate() const {
  DAOP_CHECK_GE(every_steps, 0);
  DAOP_CHECK_GE(every_s, 0.0);
  DAOP_CHECK_GE(keep_generations, 1);
  DAOP_CHECK_GE(write_latency_s, 0.0);
  DAOP_CHECK_GT(write_gbps, 0.0);
}

CheckpointStore::CheckpointStore(const CheckpointOptions& opt,
                                 sim::Timeline* tl, sim::FaultModel* fault)
    : opt_(opt), tl_(tl), fault_(fault) {
  opt_.validate();
  DAOP_CHECK(tl_ != nullptr);
}

bool CheckpointStore::due(long long request_id, long long step, double now) {
  if (!opt_.enabled()) return false;
  PerRequest& pr = req_[request_id];
  if (!pr.anchored) {
    // First sighting anchors the time trigger at the session's own clock, so
    // cadence is measured from admission, not from simulation time zero.
    pr.anchored = true;
    pr.last_step = 0;
    pr.last_time = now;
  }
  if (opt_.every_steps > 0 && step - pr.last_step >= opt_.every_steps)
    return true;
  if (opt_.every_s > 0.0 && now - pr.last_time >= opt_.every_s) return true;
  return false;
}

double CheckpointStore::write(long long request_id, long long step, double now,
                              std::vector<std::uint8_t> sealed) {
  PerRequest& pr = req_[request_id];
  pr.anchored = true;
  pr.last_step = step;
  pr.last_time = now;

  CheckpointRecord rec;
  rec.request_id = request_id;
  rec.step = step;
  rec.snap_time = now;
  const double cost =
      opt_.write_latency_s +
      static_cast<double>(sealed.size()) / (opt_.write_gbps * 1e9);
  rec.durable_at = tl_->schedule(sim::Res::PcieD2H, now, cost, "ckpt write");
  rec.bytes = std::move(sealed);

  ++stats_.writes;
  stats_.bytes_written += static_cast<long long>(rec.bytes.size());

  if (fault_ != nullptr && fault_->checkpoint_write_torn()) {
    // Torn write: only a prefix of the frame lands. unseal() rejects it via
    // the length field.
    rec.torn = true;
    rec.bytes.resize(rec.bytes.size() / 2);
    ++stats_.torn_writes;
  } else if (fault_ != nullptr && fault_->checkpoint_corrupted() &&
             !rec.bytes.empty()) {
    // Silent media corruption: one byte flips. unseal() rejects it via the
    // checksum.
    rec.corrupted = true;
    const std::size_t at = static_cast<std::size_t>(
        fault_->checkpoint_entropy() % rec.bytes.size());
    rec.bytes[at] ^= 0x01;
    ++stats_.corrupt_writes;
  }

  pr.gens.push_back(std::move(rec));
  while (static_cast<int>(pr.gens.size()) > opt_.keep_generations)
    pr.gens.pop_front();
  return pr.gens.back().durable_at;
}

const CheckpointRecord* CheckpointStore::latest_valid(long long request_id,
                                                      double now) {
  auto it = req_.find(request_id);
  if (it == req_.end()) return nullptr;
  for (auto gen = it->second.gens.rbegin(); gen != it->second.gens.rend();
       ++gen) {
    if (gen->durable_at > now) continue;  // write was in flight at the crash
    if (unseal(gen->bytes).has_value()) return &*gen;
    ++stats_.torn_rejected;
  }
  return nullptr;
}

const std::deque<CheckpointRecord>* CheckpointStore::generations(
    long long request_id) const {
  auto it = req_.find(request_id);
  return it == req_.end() ? nullptr : &it->second.gens;
}

void CheckpointStore::drop(long long request_id) { req_.erase(request_id); }

void CheckpointStore::discard_in_flight(double t) {
  for (auto& [id, pr] : req_) {
    (void)id;
    auto& gens = pr.gens;
    for (auto it = gens.begin(); it != gens.end();) {
      if (it->durable_at > t) {
        ++stats_.torn_writes;
        it = gens.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace daop::recovery
