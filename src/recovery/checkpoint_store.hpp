// Per-node checkpoint store with simulated write cost and fault injection.
//
// Each cluster node owns one CheckpointStore. At a configurable cadence
// (every K decode steps and/or every T simulated seconds) the serving loop
// seals the session's snapshot and hands it to write(): the store schedules
// the durable-write cost on the node timeline (PCIe D2H — checkpointing
// overhead is visible to the cost model and perturbed by the same hazards as
// any other transfer) and records the blob with its durability horizon.
//
// Fault injection happens at WRITE time against the STORED bytes — a torn
// write truncates the blob, a corrupt write flips one byte — so restore-side
// validation is honest: latest_valid() trusts nothing but unseal(). A write
// still in flight when the node crashes is automatically ineligible
// (durable_at > crash time), which is exactly crash consistency.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sim/fault_model.hpp"
#include "sim/timeline.hpp"

namespace daop::recovery {

struct CheckpointOptions {
  /// Checkpoint every K decode steps (0 disables the step trigger).
  int every_steps = 0;
  /// Checkpoint every T simulated seconds (0 disables the time trigger).
  double every_s = 0.0;
  /// Snapshot generations retained per request (older ones are dropped;
  /// restore falls back generation by generation when validation rejects).
  int keep_generations = 2;
  /// Fixed cost per durable write plus streaming cost per byte.
  double write_latency_s = 200e-6;
  double write_gbps = 8.0;

  bool enabled() const { return every_steps > 0 || every_s > 0.0; }
  void validate() const;
};

struct CheckpointRecord {
  long long request_id = 0;
  long long step = 0;       // decode steps completed at snapshot time
  double snap_time = 0.0;   // simulated time the snapshot was taken
  double durable_at = 0.0;  // write completion; ineligible before this
  bool torn = false;        // fault bookkeeping (stats only — restore
  bool corrupted = false;   // validation never reads these flags)
  std::vector<std::uint8_t> bytes;
};

struct CheckpointStoreStats {
  long long writes = 0;
  long long bytes_written = 0;
  long long torn_writes = 0;
  long long corrupt_writes = 0;
  /// Sealed blobs that failed unseal() during latest_valid() scans.
  long long torn_rejected = 0;
};

class CheckpointStore {
 public:
  /// `tl` prices durable writes; `fault` (may be null) injects torn/corrupt
  /// checkpoint hazards. Neither is owned.
  CheckpointStore(const CheckpointOptions& opt, sim::Timeline* tl,
                  sim::FaultModel* fault);

  const CheckpointOptions& options() const { return opt_; }

  /// True when the cadence says `request_id` (having completed `step` decode
  /// steps, now at simulated time `now`) should checkpoint. The first call
  /// for a request anchors its time trigger at `now`.
  bool due(long long request_id, long long step, double now);

  /// Records a sealed snapshot, schedules its durable-write cost, applies
  /// write faults to the stored bytes, and trims old generations. Returns
  /// the durability time.
  double write(long long request_id, long long step, double now,
               std::vector<std::uint8_t> sealed);

  /// Newest record for `request_id` that is durable by `now` AND whose bytes
  /// unseal cleanly. Rejected generations are counted in stats().torn_rejected
  /// and skipped (fall back to the previous generation). Null when nothing
  /// valid exists.
  const CheckpointRecord* latest_valid(long long request_id, double now);

  /// All retained generations for a request, oldest first (test accessor).
  const std::deque<CheckpointRecord>* generations(long long request_id) const;

  /// Drops every generation for a request (e.g. after it resolves).
  void drop(long long request_id);

  /// Drops every record whose durable write had not completed by `t`: the
  /// node crashed mid-write, so the blob never landed. Counted as torn
  /// writes. Completed generations survive (durable storage).
  void discard_in_flight(double t);

  const CheckpointStoreStats& stats() const { return stats_; }

 private:
  struct PerRequest {
    bool anchored = false;
    long long last_step = 0;
    double last_time = 0.0;
    std::deque<CheckpointRecord> gens;  // oldest first
  };

  CheckpointOptions opt_;
  sim::Timeline* tl_;
  sim::FaultModel* fault_;
  std::unordered_map<long long, PerRequest> req_;
  CheckpointStoreStats stats_;
};

}  // namespace daop::recovery
