#include "recovery/reconcile.hpp"

#include <algorithm>

namespace daop::recovery {

PlacementImage capture_placement(const cache::Placement& p) {
  PlacementImage img;
  img.n_layers = p.n_layers();
  img.n_experts = p.n_experts();
  img.capacity.resize(static_cast<std::size_t>(img.n_layers));
  img.on_gpu.assign(static_cast<std::size_t>(img.n_layers) *
                        static_cast<std::size_t>(img.n_experts),
                    0);
  for (int l = 0; l < img.n_layers; ++l) {
    img.capacity[static_cast<std::size_t>(l)] = p.capacity(l);
    for (int e = 0; e < img.n_experts; ++e) {
      if (p.on_gpu(l, e))
        img.on_gpu[static_cast<std::size_t>(l) *
                       static_cast<std::size_t>(img.n_experts) +
                   static_cast<std::size_t>(e)] = 1;
    }
  }
  return img;
}

bool apply_placement_image(const PlacementImage& img, cache::Placement& p) {
  if (img.n_layers != p.n_layers() || img.n_experts != p.n_experts())
    return false;
  for (int l = 0; l < img.n_layers; ++l) {
    int wanted = 0;
    for (int e = 0; e < img.n_experts; ++e) wanted += img.gpu(l, e) ? 1 : 0;
    if (img.capacity[static_cast<std::size_t>(l)] < wanted) return false;
  }
  for (int l = 0; l < img.n_layers; ++l) {
    // Evictions first so the wanted set always fits under the restored
    // capacity.
    for (int e = 0; e < img.n_experts; ++e) {
      if (p.on_gpu(l, e) && !img.gpu(l, e)) p.move_to_cpu(l, e);
    }
    p.set_capacity(l, img.capacity[static_cast<std::size_t>(l)]);
    for (int e = 0; e < img.n_experts; ++e) {
      if (!p.on_gpu(l, e) && img.gpu(l, e)) p.move_to_gpu(l, e);
    }
  }
  return true;
}

ReconcileResult reconcile_placement(const PlacementImage& want,
                                    cache::PlacementArbiter& arbiter,
                                    sim::Timeline& tl, double now,
                                    double migration_cost_s,
                                    long long session_id) {
  ReconcileResult res;
  res.ready = now;
  cache::Placement& have = arbiter.placement();
  const int L = std::min(want.n_layers, have.n_layers());
  const int E = std::min(want.n_experts, have.n_experts());
  for (int l = 0; l < L; ++l) {
    // Surplus first: freeing capacity lets every wanted expert move in
    // without pairing swaps. Pinned surplus stays (another session computes
    // with it).
    for (int e = 0; e < E; ++e) {
      if (have.on_gpu(l, e) && !want.gpu(l, e)) {
        if (arbiter.try_evict(l, e, session_id)) ++res.evicted;
      }
    }
    for (int e = 0; e < E; ++e) {
      if (!want.gpu(l, e) || have.on_gpu(l, e)) continue;
      if (have.gpu_count(l) >= have.capacity(l)) {
        // Capacity still saturated by pinned residents: the restored
        // session runs this expert from the CPU like any refused migration.
        ++res.refused;
        continue;
      }
      have.move_to_gpu(l, e);
      const double done =
          tl.schedule(sim::Res::PcieH2D, now, migration_cost_s, "restore mig");
      arbiter.set_weight_ready(l, e, done);
      res.ready = std::max(res.ready, done);
      ++res.migrated;
    }
  }
  return res;
}

}  // namespace daop::recovery
