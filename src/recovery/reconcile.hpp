// Placement reconciliation for warm restart.
//
// A snapshot carries the expert-residency image the session was decoding
// against on the node that crashed. Before the session resumes on a
// surviving node, that node's shared placement must converge to the image:
// missing experts are migrated in (priced on the node timeline, gated by the
// arbiter's weight-ready publication), surplus unpinned experts are evicted,
// and experts pinned by concurrent sessions are left alone (the restored
// session then degrades exactly as it would for any refused migration).
#pragma once

#include "cache/arbiter.hpp"
#include "recovery/snapshot.hpp"
#include "sim/timeline.hpp"

namespace daop::recovery {

struct ReconcileResult {
  long long migrated = 0;  // experts transferred to the GPU
  long long evicted = 0;   // surplus experts dropped to the CPU
  long long refused = 0;   // wanted experts blocked by other sessions' pins
  double ready = 0.0;      // when the last transfer lands (now if none)
};

/// Converges `arbiter`'s placement toward `want`, scheduling each H2D
/// transfer on `tl` at `migration_cost_s` and publishing weight arrival
/// through the arbiter. `session_id` identifies the restoring session for
/// pin arbitration. Deterministic: experts are visited in ascending order.
ReconcileResult reconcile_placement(const PlacementImage& want,
                                    cache::PlacementArbiter& arbiter,
                                    sim::Timeline& tl, double now,
                                    double migration_cost_s,
                                    long long session_id);

/// Captures the arbiter's current placement as a snapshot image.
PlacementImage capture_placement(const cache::Placement& p);

/// Overwrites `p` (a session-private placement) with the image: capacities,
/// then residency. Returns false on dimension mismatch, leaving `p`
/// untouched.
bool apply_placement_image(const PlacementImage& img, cache::Placement& p);

}  // namespace daop::recovery
