#include "sim/device.hpp"

namespace daop::sim {
namespace {

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
constexpr double kGB = 1e9;

}  // namespace

PlatformSpec a6000_i9_platform() {
  PlatformSpec p;
  p.name = "A6000 + i9-10980XE (paper evaluation platform)";

  p.gpu.name = "NVIDIA RTX A6000";
  p.gpu.flops_peak = 155e12;  // fp16 tensor-core peak
  p.gpu.flops_efficiency = 0.45;
  p.gpu.mem_bw_bytes_per_s = 768.0 * kGB;
  p.gpu.mem_bw_efficiency = 0.78;
  p.gpu.kernel_overhead_s = 22e-6;
  p.gpu.mem_capacity_bytes = 48.0 * kGiB;
  p.gpu.active_power_w = 300.0;
  p.gpu.idle_power_w = 25.0;

  p.cpu.name = "Intel i9-10980XE (18C @ 3.0GHz)";
  p.cpu.flops_peak = 1.7e12;  // AVX-512 fp32, all cores
  p.cpu.flops_efficiency = 0.45;
  p.cpu.mem_bw_bytes_per_s = 94.0 * kGB;  // 4ch DDR4-2933
  p.cpu.mem_bw_efficiency = 0.45;
  p.cpu.kernel_overhead_s = 8e-6;
  p.cpu.mem_capacity_bytes = 130.0 * kGiB;
  p.cpu.active_power_w = 165.0;
  p.cpu.idle_power_w = 35.0;

  // PCIe 4.0 x16: 64 GB/s nominal. Effective expert-migration bandwidth is
  // far lower in the offloading frameworks the paper measures (pageable host
  // tensors, per-expert cudaMemcpy of three separate weight matrices);
  // calibrated against Table I (352 MiB fp16 expert in ~40 ms => ~8.8 GB/s).
  p.pcie_h2d = {"PCIe4.0 x16 H2D", 64.0 * kGB, 0.138, 15e-6};
  p.pcie_d2h = {"PCIe4.0 x16 D2H", 64.0 * kGB, 0.138, 15e-6};

  p.base_power_w = 60.0;
  return p;
}

PlatformSpec a100_xeon_platform() {
  PlatformSpec p;
  p.name = "A100 + Xeon Gold 6326 (Table I platform)";

  p.gpu.name = "NVIDIA A100 80GB";
  p.gpu.flops_peak = 312e12;  // fp16 tensor-core peak
  p.gpu.flops_efficiency = 0.5;
  p.gpu.mem_bw_bytes_per_s = 1555.0 * kGB;
  p.gpu.mem_bw_efficiency = 0.8;
  p.gpu.kernel_overhead_s = 22e-6;
  p.gpu.mem_capacity_bytes = 80.0 * kGiB;
  p.gpu.active_power_w = 400.0;
  p.gpu.idle_power_w = 50.0;

  p.cpu.name = "Intel Xeon Gold 6326 (16C @ 2.9GHz)";
  p.cpu.flops_peak = 2.4e12;
  p.cpu.flops_efficiency = 0.45;
  p.cpu.mem_bw_bytes_per_s = 205.0 * kGB;  // 8ch DDR4-3200
  p.cpu.mem_bw_efficiency = 0.49;
  p.cpu.kernel_overhead_s = 8e-6;
  p.cpu.mem_capacity_bytes = 256.0 * kGiB;
  p.cpu.active_power_w = 185.0;
  p.cpu.idle_power_w = 45.0;

  p.pcie_h2d = {"PCIe4.0 x16 H2D", 64.0 * kGB, 0.138, 15e-6};
  p.pcie_d2h = {"PCIe4.0 x16 D2H", 64.0 * kGB, 0.138, 15e-6};

  p.base_power_w = 70.0;
  return p;
}

PlatformSpec rtx4090_desktop_platform() {
  PlatformSpec p;
  p.name = "RTX 4090 desktop";

  p.gpu.name = "NVIDIA RTX 4090";
  p.gpu.flops_peak = 330e12;
  p.gpu.flops_efficiency = 0.45;
  p.gpu.mem_bw_bytes_per_s = 1008.0 * kGB;
  p.gpu.mem_bw_efficiency = 0.78;
  p.gpu.kernel_overhead_s = 20e-6;
  p.gpu.mem_capacity_bytes = 24.0 * kGiB;
  p.gpu.active_power_w = 420.0;
  p.gpu.idle_power_w = 20.0;

  p.cpu.name = "Ryzen 7950X (16C)";
  p.cpu.flops_peak = 2.2e12;
  p.cpu.flops_efficiency = 0.45;
  p.cpu.mem_bw_bytes_per_s = 83.0 * kGB;  // 2ch DDR5-5200
  p.cpu.mem_bw_efficiency = 0.55;
  p.cpu.kernel_overhead_s = 8e-6;
  p.cpu.mem_capacity_bytes = 128.0 * kGiB;
  p.cpu.active_power_w = 170.0;
  p.cpu.idle_power_w = 30.0;

  p.pcie_h2d = {"PCIe4.0 x16 H2D", 64.0 * kGB, 0.14, 15e-6};
  p.pcie_d2h = {"PCIe4.0 x16 D2H", 64.0 * kGB, 0.14, 15e-6};

  p.base_power_w = 60.0;
  return p;
}

PlatformSpec laptop_platform() {
  PlatformSpec p;
  p.name = "Laptop dGPU (RTX 4070 mobile class)";

  p.gpu.name = "RTX 4070 Laptop";
  p.gpu.flops_peak = 70e12;
  p.gpu.flops_efficiency = 0.4;
  p.gpu.mem_bw_bytes_per_s = 256.0 * kGB;
  p.gpu.mem_bw_efficiency = 0.75;
  p.gpu.kernel_overhead_s = 25e-6;
  p.gpu.mem_capacity_bytes = 8.0 * kGiB;
  p.gpu.active_power_w = 115.0;
  p.gpu.idle_power_w = 10.0;

  p.cpu.name = "Mobile 8C CPU";
  p.cpu.flops_peak = 0.9e12;
  p.cpu.flops_efficiency = 0.4;
  p.cpu.mem_bw_bytes_per_s = 68.0 * kGB;
  p.cpu.mem_bw_efficiency = 0.5;
  p.cpu.kernel_overhead_s = 10e-6;
  p.cpu.mem_capacity_bytes = 64.0 * kGiB;
  p.cpu.active_power_w = 55.0;
  p.cpu.idle_power_w = 8.0;

  // PCIe 4.0 x8 in most laptop dGPU wirings.
  p.pcie_h2d = {"PCIe4.0 x8 H2D", 32.0 * kGB, 0.13, 18e-6};
  p.pcie_d2h = {"PCIe4.0 x8 D2H", 32.0 * kGB, 0.13, 18e-6};

  p.base_power_w = 25.0;
  return p;
}

}  // namespace daop::sim
