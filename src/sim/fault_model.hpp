// Hazard-injection fault plane for the performance simulator.
//
// The engines normally schedule against a perfectly calm device: PCIe never
// stalls, the CPU pool is never stolen by a co-running app, the GPU never
// throttles, and expert weight loads never fail. Real on-device deployment
// (the paper's target platform) is dominated by exactly these perturbations,
// so this module injects them deterministically: a FaultModel attached to a
// sim::Timeline perturbs every scheduled op according to a HazardScenario,
// and exposes an engine-visible transient expert-load failure stream. All
// draws flow from an explicit seed through daop::Rng, so a hazard run is as
// bit-reproducible as a calm one. With no FaultModel attached (the default)
// the timeline behaves exactly as before — the fault plane is a strict
// no-op when off.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/timeline.hpp"

namespace daop::sim {

/// Configuration of one hazard environment. All fields default to "no
/// hazard"; a default-constructed scenario is disabled.
struct HazardScenario {
  // ---- PCIe link hazards (both DMA directions) ----
  /// Probability that a transfer hits a link stall (bus contention,
  /// host-memory pressure).
  double pcie_stall_prob = 0.0;
  /// Mean stall length in seconds (exponentially distributed).
  double pcie_stall_mean_s = 0.0;
  /// Probability that a transfer attempt fails outright and must be
  /// retried (ECC replay, DMA error). Retries re-pay the full transfer
  /// plus an exponential backoff; the attempt after `max_transfer_retries`
  /// always succeeds so runs terminate.
  double pcie_fail_prob = 0.0;
  int max_transfer_retries = 3;
  /// Base retry backoff in seconds; doubles per consecutive retry.
  double retry_backoff_s = 1e-3;

  // ---- CPU-pool contention (co-running app steals memory bandwidth) ----
  /// Length of one contention cycle; 0 disables CPU contention.
  double cpu_contention_period_s = 0.0;
  /// Contended window at the start of each cycle.
  double cpu_contention_window_s = 0.0;
  /// Factor (>= 1) by which CPU ops starting inside a window slow down.
  double cpu_contention_slowdown = 1.0;

  // ---- GPU thermal throttling ----
  /// Length of one throttle cycle; 0 disables GPU throttling.
  double gpu_throttle_period_s = 0.0;
  /// Throttled window at the start of each cycle.
  double gpu_throttle_window_s = 0.0;
  /// Factor (>= 1) by which GPU ops starting inside a window slow down.
  double gpu_throttle_slowdown = 1.0;

  // ---- Transient expert weight-load failures ----
  /// Probability that one expert weight-load attempt fails transiently
  /// (engines decide how to react: retry, abort, or fall back to CPU).
  double expert_load_fail_prob = 0.0;

  // ---- Checkpoint-durability hazards (src/recovery) ----
  /// Probability that a checkpoint write is torn: only a prefix of the
  /// frame lands, so restore-side validation must reject it by length.
  double ckpt_torn_write_prob = 0.0;
  /// Probability that a durable checkpoint suffers silent single-byte
  /// corruption, rejected at restore by the frame checksum.
  double ckpt_corrupt_prob = 0.0;

  // ---- Node-scoped cluster faults (src/cluster) ----
  // These describe faults of a whole replica, not of one op. The FaultModel
  // samples them once per (scenario, seed) into NodeFaults; the cluster
  // router reads crash/link draws directly, while the brownout window also
  // perturbs this node's GPU/PCIe ops through perturb(). All default to "no
  // fault", so every pre-cluster scenario is bit-identical.
  /// Probability that this node crashes during the run (in-flight sessions
  /// lost; the node never recovers).
  double node_crash_prob = 0.0;
  /// Crash time is drawn uniformly from [node_crash_min_s, node_crash_max_s].
  double node_crash_min_s = 0.0;
  double node_crash_max_s = 0.0;
  /// Probability of one sustained brownout window on this node (sustained
  /// slowdown of its GPU stream and both PCIe DMA directions).
  double node_brownout_prob = 0.0;
  /// Brownout start is drawn uniformly from [min_start, max_start]; the
  /// window then lasts node_brownout_duration_s.
  double node_brownout_min_start_s = 0.0;
  double node_brownout_max_start_s = 0.0;
  double node_brownout_duration_s = 0.0;
  /// Factor (>= 1) by which GPU/PCIe ops starting inside the window slow
  /// down.
  double node_brownout_slowdown = 1.0;
  /// Probability that the router->node link is degraded for the whole run.
  double link_degrade_prob = 0.0;
  /// Dispatch latency added to every request routed over a degraded link.
  double link_degrade_latency_s = 0.0;

  /// True when any hazard can actually fire.
  bool enabled() const;

  /// CHECKs every field's range (probabilities in [0,1], slowdowns >= 1,
  /// windows within their periods, non-negative times/retries).
  void validate() const;
};

/// Named scenario presets scaled by `intensity` in [0, 1] (0 = disabled):
/// "none", "pcie" (stalls + transfer failures), "cpu" (pool contention),
/// "thermal" (GPU throttling), "expert-load" (transient load failures),
/// "all" (every op-level hazard at once — node-scoped and checkpoint
/// faults are NOT included, so pre-cluster chaos runs stay bit-identical).
/// Node-scoped presets for the cluster plane: "node-crash",
/// "node-brownout", "link-degrade", and "cluster" (all three node faults
/// together). Checkpoint-durability presets for the recovery plane:
/// "ckpt-torn", "ckpt-corrupt", and "ckpt" (both).
HazardScenario make_hazard_scenario(const std::string& kind,
                                    double intensity);

/// The preset names accepted by make_hazard_scenario.
const std::vector<std::string>& hazard_scenario_kinds();

/// Deterministic hazard sampler. One FaultModel is attached to a Timeline
/// (Timeline::set_fault_model) and shared by every run of one experiment;
/// the draw sequence depends only on (seed, order of schedule calls), so a
/// fixed seed reproduces every perturbation bit-for-bit.
class FaultModel {
 public:
  /// Validates `scenario` and derives the deterministic streams from
  /// `seed`.
  FaultModel(const HazardScenario& scenario, std::uint64_t seed);

  const HazardScenario& scenario() const { return scenario_; }
  bool enabled() const { return enabled_; }

  /// Extra delay injected into one scheduled op.
  struct Perturbation {
    double extra_s = 0.0;  ///< added to the op's duration (>= 0)
    int retries = 0;       ///< link-level transfer retries included
  };

  /// Samples the perturbation for an op of `duration` seconds starting at
  /// `start` on resource `r`. Consumes random draws only for PCIe ops;
  /// contention/throttle windows are a fixed (seed-phased) schedule.
  Perturbation perturb(Res r, double start, double duration);

  /// Engine hook: whether the next expert weight-load attempt fails
  /// transiently. Independent stream from perturb().
  bool expert_load_fails();

  /// Checkpoint-store hooks, on their own stream (fork 5) so enabling
  /// checkpoint hazards never shifts an op-level or node-level draw. Each
  /// consumes a draw only when its probability is positive.
  bool checkpoint_write_torn();
  bool checkpoint_corrupted();
  /// Raw entropy for placing the corrupted byte (always draws).
  std::uint64_t checkpoint_entropy();

  /// Cursor over the streams a resumed session consumes mid-run. Saving the
  /// cursor into a checkpoint and restoring it into a fresh FaultModel of
  /// the same (scenario, seed) continues the hazard sequence exactly where
  /// the suspended run left off — the core of bit-identical warm restart.
  struct StreamCursor {
    Rng::State transfer;
    Rng::State load;
  };
  StreamCursor stream_cursor() const {
    return StreamCursor{transfer_rng_.save_state(), load_rng_.save_state()};
  }
  void set_stream_cursor(const StreamCursor& c) {
    transfer_rng_.load_state(c.transfer);
    load_rng_.load_state(c.load);
  }

  /// Node-scoped fault draws, resolved once at construction from a stream
  /// independent of the op-level hazards (so attaching node faults never
  /// changes a pre-cluster perturbation sequence). The cluster router reads
  /// crash/link fields directly; an active brownout window additionally
  /// slows this node's GPU/PCIe ops through perturb().
  struct NodeFaults {
    bool crash = false;
    double crash_time_s = 0.0;  ///< valid when crash
    bool brownout = false;
    double brownout_start_s = 0.0;  ///< valid when brownout
    double brownout_end_s = 0.0;
    double brownout_slowdown = 1.0;
    bool link_degraded = false;
    double link_latency_s = 0.0;  ///< valid when link_degraded
  };
  const NodeFaults& node_faults() const { return node_; }

  /// True when `t` falls inside this node's sampled brownout window.
  bool in_brownout(double t) const {
    return node_.brownout && t >= node_.brownout_start_s &&
           t < node_.brownout_end_s;
  }

 private:
  HazardScenario scenario_;
  bool enabled_ = false;
  Rng transfer_rng_;
  Rng load_rng_;
  Rng ckpt_rng_;
  double cpu_phase_s_ = 0.0;  ///< window offset within the CPU cycle
  double gpu_phase_s_ = 0.0;  ///< window offset within the GPU cycle
  NodeFaults node_;
};

}  // namespace daop::sim
