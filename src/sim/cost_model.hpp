// Roofline cost model: maps (flops, bytes) of an op onto a device, and
// transfer sizes onto a link.
#pragma once

#include "sim/device.hpp"

namespace daop::sim {

/// Cost model over one platform. All returned times are seconds.
class CostModel {
 public:
  explicit CostModel(PlatformSpec platform);

  const PlatformSpec& platform() const { return platform_; }

  /// Time for a dense op: max(compute roofline, memory roofline) plus
  /// `n_kernels` dispatch overheads. `bytes` is total weight+activation
  /// traffic (for decode GEMV this is dominated by the weight read).
  double dense_op_time(const DeviceSpec& dev, double flops, double bytes,
                       int n_kernels = 1) const;

  double gpu_op_time(double flops, double bytes, int n_kernels = 1) const;
  double cpu_op_time(double flops, double bytes, int n_kernels = 1) const;

  /// Host-to-device transfer time for `bytes`.
  double h2d_time(double bytes) const;
  /// Device-to-host transfer time for `bytes`.
  double d2h_time(double bytes) const;

 private:
  PlatformSpec platform_;
};

}  // namespace daop::sim
