#include "sim/cost_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace daop::sim {

CostModel::CostModel(PlatformSpec platform) : platform_(std::move(platform)) {
  DAOP_CHECK_GT(platform_.gpu.flops(), 0.0);
  DAOP_CHECK_GT(platform_.gpu.mem_bw(), 0.0);
  DAOP_CHECK_GT(platform_.cpu.flops(), 0.0);
  DAOP_CHECK_GT(platform_.cpu.mem_bw(), 0.0);
  DAOP_CHECK_GT(platform_.pcie_h2d.bw(), 0.0);
  DAOP_CHECK_GT(platform_.pcie_d2h.bw(), 0.0);
}

double CostModel::dense_op_time(const DeviceSpec& dev, double flops,
                                double bytes, int n_kernels) const {
  DAOP_CHECK_GE(flops, 0.0);
  DAOP_CHECK_GE(bytes, 0.0);
  DAOP_CHECK_GE(n_kernels, 0);
  const double compute = flops / dev.flops();
  const double memory = bytes / dev.mem_bw();
  return std::max(compute, memory) + n_kernels * dev.kernel_overhead_s;
}

double CostModel::gpu_op_time(double flops, double bytes, int n_kernels) const {
  return dense_op_time(platform_.gpu, flops, bytes, n_kernels);
}

double CostModel::cpu_op_time(double flops, double bytes, int n_kernels) const {
  return dense_op_time(platform_.cpu, flops, bytes, n_kernels);
}

double CostModel::h2d_time(double bytes) const {
  DAOP_CHECK_GE(bytes, 0.0);
  return platform_.pcie_h2d.latency_s + bytes / platform_.pcie_h2d.bw();
}

double CostModel::d2h_time(double bytes) const {
  DAOP_CHECK_GE(bytes, 0.0);
  return platform_.pcie_d2h.latency_s + bytes / platform_.pcie_d2h.bw();
}

}  // namespace daop::sim
