#include "sim/fault_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace daop::sim {
namespace {

/// True when `t` falls inside the active window of a periodic hazard whose
/// cycle starts are shifted by `phase`.
bool in_window(double t, double period, double window, double phase) {
  if (period <= 0.0 || window <= 0.0) return false;
  const double x = std::fmod(t + phase, period);
  return x < window;
}

}  // namespace

bool HazardScenario::enabled() const {
  return pcie_stall_prob > 0.0 || pcie_fail_prob > 0.0 ||
         (cpu_contention_period_s > 0.0 && cpu_contention_window_s > 0.0 &&
          cpu_contention_slowdown > 1.0) ||
         (gpu_throttle_period_s > 0.0 && gpu_throttle_window_s > 0.0 &&
          gpu_throttle_slowdown > 1.0) ||
         expert_load_fail_prob > 0.0 || ckpt_torn_write_prob > 0.0 ||
         ckpt_corrupt_prob > 0.0 || node_crash_prob > 0.0 ||
         (node_brownout_prob > 0.0 && node_brownout_duration_s > 0.0 &&
          node_brownout_slowdown > 1.0) ||
         (link_degrade_prob > 0.0 && link_degrade_latency_s > 0.0);
}

void HazardScenario::validate() const {
  DAOP_CHECK_MSG(pcie_stall_prob >= 0.0 && pcie_stall_prob <= 1.0,
                 "pcie_stall_prob must be in [0,1], got " << pcie_stall_prob);
  DAOP_CHECK_MSG(pcie_fail_prob >= 0.0 && pcie_fail_prob <= 1.0,
                 "pcie_fail_prob must be in [0,1], got " << pcie_fail_prob);
  DAOP_CHECK_MSG(expert_load_fail_prob >= 0.0 && expert_load_fail_prob <= 1.0,
                 "expert_load_fail_prob must be in [0,1], got "
                     << expert_load_fail_prob);
  DAOP_CHECK_MSG(pcie_stall_mean_s >= 0.0,
                 "pcie_stall_mean_s must be >= 0, got " << pcie_stall_mean_s);
  DAOP_CHECK_MSG(retry_backoff_s >= 0.0,
                 "retry_backoff_s must be >= 0, got " << retry_backoff_s);
  DAOP_CHECK_MSG(max_transfer_retries >= 0,
                 "max_transfer_retries must be >= 0, got "
                     << max_transfer_retries);
  DAOP_CHECK_MSG(ckpt_torn_write_prob >= 0.0 && ckpt_torn_write_prob <= 1.0,
                 "ckpt_torn_write_prob must be in [0,1], got "
                     << ckpt_torn_write_prob);
  DAOP_CHECK_MSG(ckpt_corrupt_prob >= 0.0 && ckpt_corrupt_prob <= 1.0,
                 "ckpt_corrupt_prob must be in [0,1], got "
                     << ckpt_corrupt_prob);
  DAOP_CHECK_MSG(cpu_contention_period_s >= 0.0 &&
                     cpu_contention_window_s >= 0.0 &&
                     cpu_contention_window_s <= cpu_contention_period_s,
                 "CPU contention window must fit its period (window "
                     << cpu_contention_window_s << ", period "
                     << cpu_contention_period_s << ")");
  DAOP_CHECK_MSG(cpu_contention_slowdown >= 1.0,
                 "cpu_contention_slowdown must be >= 1, got "
                     << cpu_contention_slowdown);
  DAOP_CHECK_MSG(gpu_throttle_period_s >= 0.0 &&
                     gpu_throttle_window_s >= 0.0 &&
                     gpu_throttle_window_s <= gpu_throttle_period_s,
                 "GPU throttle window must fit its period (window "
                     << gpu_throttle_window_s << ", period "
                     << gpu_throttle_period_s << ")");
  DAOP_CHECK_MSG(gpu_throttle_slowdown >= 1.0,
                 "gpu_throttle_slowdown must be >= 1, got "
                     << gpu_throttle_slowdown);
  DAOP_CHECK_MSG(node_crash_prob >= 0.0 && node_crash_prob <= 1.0,
                 "node_crash_prob must be in [0,1], got " << node_crash_prob);
  DAOP_CHECK_MSG(node_crash_min_s >= 0.0 &&
                     node_crash_max_s >= node_crash_min_s,
                 "node crash window must satisfy 0 <= min <= max (min "
                     << node_crash_min_s << ", max " << node_crash_max_s
                     << ")");
  DAOP_CHECK_MSG(node_brownout_prob >= 0.0 && node_brownout_prob <= 1.0,
                 "node_brownout_prob must be in [0,1], got "
                     << node_brownout_prob);
  DAOP_CHECK_MSG(node_brownout_min_start_s >= 0.0 &&
                     node_brownout_max_start_s >= node_brownout_min_start_s,
                 "node brownout start window must satisfy 0 <= min <= max "
                 "(min "
                     << node_brownout_min_start_s << ", max "
                     << node_brownout_max_start_s << ")");
  DAOP_CHECK_MSG(node_brownout_duration_s >= 0.0,
                 "node_brownout_duration_s must be >= 0, got "
                     << node_brownout_duration_s);
  DAOP_CHECK_MSG(node_brownout_slowdown >= 1.0,
                 "node_brownout_slowdown must be >= 1, got "
                     << node_brownout_slowdown);
  DAOP_CHECK_MSG(link_degrade_prob >= 0.0 && link_degrade_prob <= 1.0,
                 "link_degrade_prob must be in [0,1], got "
                     << link_degrade_prob);
  DAOP_CHECK_MSG(link_degrade_latency_s >= 0.0,
                 "link_degrade_latency_s must be >= 0, got "
                     << link_degrade_latency_s);
}

HazardScenario make_hazard_scenario(const std::string& kind,
                                    double intensity) {
  DAOP_CHECK_MSG(intensity >= 0.0 && intensity <= 1.0,
                 "hazard intensity must be in [0,1], got " << intensity);
  // Validate the kind before the calm-intensity early return so a typo'd
  // preset never silently runs a calm-device experiment.
  {
    const std::vector<std::string>& kinds = hazard_scenario_kinds();
    if (std::find(kinds.begin(), kinds.end(), kind) == kinds.end()) {
      std::string valid;
      for (const std::string& k : kinds) {
        if (!valid.empty()) valid += ", ";
        valid += k;
      }
      DAOP_CHECK_MSG(false, "unknown hazard scenario '"
                                << kind << "' (valid kinds: " << valid
                                << ")");
    }
  }
  HazardScenario sc;
  if (kind == "none" || intensity == 0.0) return sc;
  const bool all = kind == "all";
  bool known = all;
  if (all || kind == "pcie") {
    known = true;
    sc.pcie_stall_prob = 0.25 * intensity;
    sc.pcie_stall_mean_s = 5e-3 * intensity;
    sc.pcie_fail_prob = 0.10 * intensity;
  }
  if (all || kind == "cpu") {
    known = true;
    // A co-running app periodically steals the shared DRAM bandwidth the
    // memory-bound CPU expert path depends on.
    sc.cpu_contention_period_s = 0.05;
    sc.cpu_contention_window_s = 0.03 * intensity;
    sc.cpu_contention_slowdown = 1.0 + 3.0 * intensity;
  }
  if (all || kind == "thermal") {
    known = true;
    sc.gpu_throttle_period_s = 0.2;
    sc.gpu_throttle_window_s = 0.08 * intensity;
    sc.gpu_throttle_slowdown = 1.0 + 0.8 * intensity;
  }
  if (all || kind == "expert-load") {
    known = true;
    sc.expert_load_fail_prob = 0.5 * intensity;
  }
  // Checkpoint-durability presets (recovery plane). Deliberately NOT part
  // of "all" either: checkpointing postdates it and "all" runs must stay
  // bit-identical.
  const bool ckpt = kind == "ckpt";
  if (ckpt || kind == "ckpt-torn") {
    known = true;
    sc.ckpt_torn_write_prob = 0.5 * intensity;
  }
  if (ckpt || kind == "ckpt-corrupt") {
    known = true;
    sc.ckpt_corrupt_prob = 0.25 * intensity;
  }
  // Node-scoped presets (cluster plane). Deliberately NOT part of "all":
  // "all" predates the cluster layer and its runs must stay bit-identical.
  const bool cluster = kind == "cluster";
  if (cluster || kind == "node-crash") {
    known = true;
    sc.node_crash_prob = intensity;
    sc.node_crash_min_s = 5.0;
    sc.node_crash_max_s = 50.0;
  }
  if (cluster || kind == "node-brownout") {
    known = true;
    sc.node_brownout_prob = intensity;
    sc.node_brownout_min_start_s = 1.0;
    sc.node_brownout_max_start_s = 20.0;
    sc.node_brownout_duration_s = 10.0;
    sc.node_brownout_slowdown = 1.0 + 2.0 * intensity;
  }
  if (cluster || kind == "link-degrade") {
    known = true;
    sc.link_degrade_prob = intensity;
    sc.link_degrade_latency_s = 0.02 * intensity;
  }
  DAOP_CHECK_MSG(known, "unreachable: kind was validated above");
  sc.validate();
  return sc;
}

const std::vector<std::string>& hazard_scenario_kinds() {
  static const std::vector<std::string> kinds = {
      "none",         "pcie",        "cpu",          "thermal",
      "expert-load",  "ckpt-torn",   "ckpt-corrupt", "ckpt",
      "node-crash",   "node-brownout", "link-degrade", "cluster",
      "all"};
  return kinds;
}

FaultModel::FaultModel(const HazardScenario& scenario, std::uint64_t seed)
    : scenario_(scenario) {
  scenario_.validate();
  enabled_ = scenario_.enabled();
  Rng base(seed);
  transfer_rng_ = base.fork(1);
  load_rng_ = base.fork(2);
  // Window phases are drawn once so hazard windows do not all start at
  // t = 0 (which would systematically punish prefill).
  Rng phase_rng = base.fork(3);
  cpu_phase_s_ = phase_rng.uniform() * scenario_.cpu_contention_period_s;
  gpu_phase_s_ = phase_rng.uniform() * scenario_.gpu_throttle_period_s;
  // Node-scoped fault draws live on their own stream (fork 4) with a fixed
  // draw count, so the op-level streams above — and thus every pre-cluster
  // hazard run — are bit-identical whether or not node faults are
  // configured.
  // Checkpoint-durability hazards draw from fork 5; declared before the
  // node stream below for no reason other than locality — every fork is
  // consumption-independent, so neither order nor probability settings can
  // shift another stream's draws.
  ckpt_rng_ = base.fork(5);
  Rng node_rng = base.fork(4);
  const double u_crash = node_rng.uniform();
  const double u_crash_t = node_rng.uniform();
  const double u_brownout = node_rng.uniform();
  const double u_brownout_t = node_rng.uniform();
  const double u_link = node_rng.uniform();
  node_.crash =
      scenario_.node_crash_prob > 0.0 && u_crash < scenario_.node_crash_prob;
  node_.crash_time_s =
      scenario_.node_crash_min_s +
      u_crash_t * (scenario_.node_crash_max_s - scenario_.node_crash_min_s);
  node_.brownout = scenario_.node_brownout_prob > 0.0 &&
                   scenario_.node_brownout_duration_s > 0.0 &&
                   scenario_.node_brownout_slowdown > 1.0 &&
                   u_brownout < scenario_.node_brownout_prob;
  node_.brownout_start_s = scenario_.node_brownout_min_start_s +
                           u_brownout_t * (scenario_.node_brownout_max_start_s -
                                           scenario_.node_brownout_min_start_s);
  node_.brownout_end_s =
      node_.brownout_start_s + scenario_.node_brownout_duration_s;
  node_.brownout_slowdown = scenario_.node_brownout_slowdown;
  node_.link_degraded = scenario_.link_degrade_prob > 0.0 &&
                        u_link < scenario_.link_degrade_prob;
  node_.link_latency_s = scenario_.link_degrade_latency_s;
}

FaultModel::Perturbation FaultModel::perturb(Res r, double start,
                                             double duration) {
  Perturbation p;
  if (!enabled_ || duration <= 0.0) return p;
  switch (r) {
    case Res::GpuStream:
      if (in_window(start, scenario_.gpu_throttle_period_s,
                    scenario_.gpu_throttle_window_s, gpu_phase_s_)) {
        p.extra_s = duration * (scenario_.gpu_throttle_slowdown - 1.0);
      }
      break;
    case Res::CpuPool:
      if (in_window(start, scenario_.cpu_contention_period_s,
                    scenario_.cpu_contention_window_s, cpu_phase_s_)) {
        p.extra_s = duration * (scenario_.cpu_contention_slowdown - 1.0);
      }
      break;
    case Res::PcieH2D:
    case Res::PcieD2H: {
      if (scenario_.pcie_stall_prob > 0.0 &&
          transfer_rng_.uniform() < scenario_.pcie_stall_prob) {
        // Exponential stall with the configured mean.
        p.extra_s += -scenario_.pcie_stall_mean_s *
                     std::log(std::max(transfer_rng_.uniform(), 1e-12));
      }
      if (scenario_.pcie_fail_prob > 0.0) {
        double backoff = scenario_.retry_backoff_s;
        while (p.retries < scenario_.max_transfer_retries &&
               transfer_rng_.uniform() < scenario_.pcie_fail_prob) {
          // The failed attempt burned the full transfer; back off and
          // re-transfer. The final attempt always succeeds.
          p.extra_s += duration + backoff;
          backoff *= 2.0;
          ++p.retries;
        }
      }
      break;
    }
  }
  // Node brownout: a sustained slowdown of this node's GPU stream and PCIe
  // link (the CPU pool rides out a brownout — it is host-side). A fixed
  // window like the contention/throttle hazards, so it consumes no draws.
  if (r != Res::CpuPool && in_brownout(start)) {
    p.extra_s += duration * (node_.brownout_slowdown - 1.0);
  }
  return p;
}

bool FaultModel::expert_load_fails() {
  if (scenario_.expert_load_fail_prob <= 0.0) return false;
  return load_rng_.uniform() < scenario_.expert_load_fail_prob;
}

bool FaultModel::checkpoint_write_torn() {
  if (scenario_.ckpt_torn_write_prob <= 0.0) return false;
  return ckpt_rng_.uniform() < scenario_.ckpt_torn_write_prob;
}

bool FaultModel::checkpoint_corrupted() {
  if (scenario_.ckpt_corrupt_prob <= 0.0) return false;
  return ckpt_rng_.uniform() < scenario_.ckpt_corrupt_prob;
}

std::uint64_t FaultModel::checkpoint_entropy() { return ckpt_rng_.next_u64(); }

}  // namespace daop::sim
