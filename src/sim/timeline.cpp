#include "sim/timeline.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/strings.hpp"
#include "sim/fault_model.hpp"

namespace daop::sim {

const char* res_name(Res r) {
  switch (r) {
    case Res::GpuStream: return "GPU";
    case Res::CpuPool:   return "CPU";
    case Res::PcieH2D:   return "PCIe H2D";
    case Res::PcieD2H:   return "PCIe D2H";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// TagPool

TagPool::TagPool() { clear(); }

TagId TagPool::intern(std::string_view s) {
  if (s.empty()) return kNoTag;
  const auto it = std::lower_bound(
      index_.begin(), index_.end(), s,
      [](const std::pair<std::string, TagId>& e, std::string_view v) {
        return e.first < v;
      });
  if (it != index_.end() && it->first == s) return it->second;
  const TagId id = static_cast<TagId>(strings_.size());
  strings_.emplace_back(s);
  index_.insert(it, {std::string(s), id});
  return id;
}

const std::string& TagPool::view(TagId id) const {
  DAOP_CHECK_LT(static_cast<std::size_t>(id), strings_.size());
  return strings_[id];
}

void TagPool::clear() {
  strings_.clear();
  index_.clear();
  strings_.emplace_back();  // kNoTag == 0 is always the empty string
}

// ---------------------------------------------------------------------------
// IntervalSoA

void IntervalSoA::clear() {
  res.clear();
  start.clear();
  end.clear();
  tag.clear();
}

void IntervalSoA::reserve(std::size_t n) {
  res.reserve(n);
  start.reserve(n);
  end.reserve(n);
  tag.reserve(n);
}

void IntervalSoA::push_back(Res r, double s, double e, TagId t) {
  if (res.size() == res.capacity()) {
    // Arena-style chunked growth: never grow by less than 1024 intervals so
    // recorded runs pay for at most a handful of reallocations.
    reserve(std::max<std::size_t>(1024, res.capacity() * 2));
  }
  res.push_back(r);
  start.push_back(s);
  end.push_back(e);
  tag.push_back(t);
}

// ---------------------------------------------------------------------------
// Timeline

Timeline::Timeline() { reset(); }

double Timeline::schedule(Res r, double ready, double duration,
                          std::string_view tag) {
  // Interning is gated on recording: with recording off (the default) the
  // tag is never even looked at and this is the pure arithmetic hot path.
  return schedule(r, ready, duration,
                  (record_ && !tag.empty()) ? tags_.intern(tag) : kNoTag);
}

double Timeline::schedule(Res r, double ready, double duration, TagId tag) {
  // Negative, NaN or infinite inputs would silently corrupt a resource's
  // busy-until state for every later op, so they are hard errors — this is
  // what lets fault-perturbed ops be trusted downstream.
  DAOP_CHECK_MSG(std::isfinite(ready) && ready >= 0.0,
                 "schedule ready time must be finite and >= 0, got " << ready);
  DAOP_CHECK_MSG(std::isfinite(duration) && duration >= 0.0,
                 "schedule duration must be finite and >= 0, got "
                     << duration);
  const int i = static_cast<int>(r);
  const double start = std::max(ready, busy_until_[i]);
  last_start_ = start;
  double hazard_extra = 0.0;
  if (fault_ != nullptr && fault_->enabled() && duration > 0.0) {
    const FaultModel::Perturbation p = fault_->perturb(r, start, duration);
    DAOP_CHECK_MSG(std::isfinite(p.extra_s) && p.extra_s >= 0.0,
                   "fault perturbation must be finite and >= 0, got "
                       << p.extra_s);
    hazard_extra = p.extra_s;
    duration += p.extra_s;
    hazard_stall_s_ += p.extra_s;
    hazard_transfer_retries_ += p.retries;
  }
  const double end = start + duration;
  if (record_ && hazard_extra > 0.0) {
    if (hazard_tag_ == kNoTag) hazard_tag_ = tags_.intern("hazard stall");
    hazard_soa_.push_back(r, end - hazard_extra, end, hazard_tag_);
    hazard_compat_dirty_ = true;
  }
  DAOP_CHECK_GE(end, busy_until_[i]);  // time never moves backwards
  busy_until_[i] = end;
  busy_time_[i] += duration;
  if (record_ && duration > 0.0) {
    soa_.push_back(r, start, end, tag);
    compat_dirty_ = true;
  }
  return end;
}

double Timeline::busy_until(Res r) const {
  return busy_until_[static_cast<int>(r)];
}

double Timeline::busy_time(Res r) const {
  return busy_time_[static_cast<int>(r)];
}

double Timeline::span() const {
  double s = 0.0;
  for (double t : busy_until_) s = std::max(s, t);
  return s;
}

void Timeline::block_until(Res r, double t) {
  DAOP_CHECK_MSG(std::isfinite(t) && t >= 0.0,
                 "block_until time must be finite and >= 0, got " << t);
  const int i = static_cast<int>(r);
  busy_until_[i] = std::max(busy_until_[i], t);
}

namespace {
void materialize(const IntervalSoA& soa, const TagPool& tags,
                 std::vector<Interval>& out) {
  out.clear();
  out.reserve(soa.size());
  for (std::size_t i = 0; i < soa.size(); ++i) {
    out.push_back(
        Interval{soa.res[i], soa.start[i], soa.end[i], tags.view(soa.tag[i])});
  }
}
}  // namespace

const std::vector<Interval>& Timeline::intervals() const {
  if (compat_dirty_) {
    materialize(soa_, tags_, compat_);
    compat_dirty_ = false;
  }
  return compat_;
}

const std::vector<Interval>& Timeline::hazard_intervals() const {
  if (hazard_compat_dirty_) {
    materialize(hazard_soa_, tags_, hazard_compat_);
    hazard_compat_dirty_ = false;
  }
  return hazard_compat_;
}

void Timeline::reset() {
  busy_until_.fill(0.0);
  busy_time_.fill(0.0);
  soa_.clear();
  hazard_soa_.clear();
  compat_.clear();
  hazard_compat_.clear();
  compat_dirty_ = false;
  hazard_compat_dirty_ = false;
  last_start_ = 0.0;
  hazard_stall_s_ = 0.0;
  hazard_transfer_retries_ = 0;
}

std::string render_gantt(const Timeline& tl, double t0, double t1, int width) {
  DAOP_CHECK_LT(t0, t1);
  DAOP_CHECK_GT(width, 0);
  const double scale = width / (t1 - t0);

  std::string out;
  out += "time: " + fmt_f(t0 * 1e3, 2) + " ms .. " + fmt_f(t1 * 1e3, 2) +
         " ms  ('#' = busy)\n";
  for (int ri = 0; ri < kNumRes; ++ri) {
    const Res r = static_cast<Res>(ri);
    std::string lane(static_cast<std::size_t>(width), '.');
    for (const auto& iv : tl.intervals()) {
      if (iv.res != r || iv.end <= t0 || iv.start >= t1) continue;
      const int a = std::clamp(
          static_cast<int>((std::max(iv.start, t0) - t0) * scale), 0, width - 1);
      const int b = std::clamp(
          static_cast<int>((std::min(iv.end, t1) - t0) * scale), a + 1, width);
      for (int x = a; x < b; ++x) lane[static_cast<std::size_t>(x)] = '#';
    }
    out += pad(res_name(r), 9) + "|" + lane + "|\n";
  }

  // Event legend: list intervals that intersect the window, in start order.
  std::vector<Interval> evs;
  for (const auto& iv : tl.intervals()) {
    if (iv.end > t0 && iv.start < t1 && !iv.tag.empty()) evs.push_back(iv);
  }
  std::sort(evs.begin(), evs.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
  for (const auto& iv : evs) {
    out += "  [" + fmt_f(iv.start * 1e3, 2) + " - " + fmt_f(iv.end * 1e3, 2) +
           " ms] " + res_name(iv.res) + ": " + iv.tag + "\n";
  }
  return out;
}

}  // namespace daop::sim
