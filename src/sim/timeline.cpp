#include "sim/timeline.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/strings.hpp"
#include "sim/fault_model.hpp"

namespace daop::sim {

const char* res_name(Res r) {
  switch (r) {
    case Res::GpuStream: return "GPU";
    case Res::CpuPool:   return "CPU";
    case Res::PcieH2D:   return "PCIe H2D";
    case Res::PcieD2H:   return "PCIe D2H";
  }
  return "?";
}

Timeline::Timeline() { reset(); }

double Timeline::schedule(Res r, double ready, double duration,
                          std::string tag) {
  // Negative, NaN or infinite inputs would silently corrupt a resource's
  // busy-until state for every later op, so they are hard errors — this is
  // what lets fault-perturbed ops be trusted downstream.
  DAOP_CHECK_MSG(std::isfinite(ready) && ready >= 0.0,
                 "schedule ready time must be finite and >= 0, got " << ready);
  DAOP_CHECK_MSG(std::isfinite(duration) && duration >= 0.0,
                 "schedule duration must be finite and >= 0, got "
                     << duration);
  const int i = static_cast<int>(r);
  const double start = std::max(ready, busy_until_[i]);
  last_start_ = start;
  double hazard_extra = 0.0;
  if (fault_ != nullptr && fault_->enabled() && duration > 0.0) {
    const FaultModel::Perturbation p = fault_->perturb(r, start, duration);
    DAOP_CHECK_MSG(std::isfinite(p.extra_s) && p.extra_s >= 0.0,
                   "fault perturbation must be finite and >= 0, got "
                       << p.extra_s);
    hazard_extra = p.extra_s;
    duration += p.extra_s;
    hazard_stall_s_ += p.extra_s;
    hazard_transfer_retries_ += p.retries;
  }
  const double end = start + duration;
  if (record_ && hazard_extra > 0.0) {
    hazard_intervals_.push_back(
        Interval{r, end - hazard_extra, end, "hazard stall"});
  }
  DAOP_CHECK_GE(end, busy_until_[i]);  // time never moves backwards
  busy_until_[i] = end;
  busy_time_[i] += duration;
  if (record_ && duration > 0.0) {
    intervals_.push_back(Interval{r, start, end, std::move(tag)});
  }
  return end;
}

double Timeline::busy_until(Res r) const {
  return busy_until_[static_cast<int>(r)];
}

double Timeline::busy_time(Res r) const {
  return busy_time_[static_cast<int>(r)];
}

double Timeline::span() const {
  double s = 0.0;
  for (double t : busy_until_) s = std::max(s, t);
  return s;
}

void Timeline::block_until(Res r, double t) {
  DAOP_CHECK_MSG(std::isfinite(t) && t >= 0.0,
                 "block_until time must be finite and >= 0, got " << t);
  const int i = static_cast<int>(r);
  busy_until_[i] = std::max(busy_until_[i], t);
}

void Timeline::reset() {
  busy_until_.fill(0.0);
  busy_time_.fill(0.0);
  intervals_.clear();
  hazard_intervals_.clear();
  last_start_ = 0.0;
  hazard_stall_s_ = 0.0;
  hazard_transfer_retries_ = 0;
}

std::string render_gantt(const Timeline& tl, double t0, double t1, int width) {
  DAOP_CHECK_LT(t0, t1);
  DAOP_CHECK_GT(width, 0);
  const double scale = width / (t1 - t0);

  std::string out;
  out += "time: " + fmt_f(t0 * 1e3, 2) + " ms .. " + fmt_f(t1 * 1e3, 2) +
         " ms  ('#' = busy)\n";
  for (int ri = 0; ri < kNumRes; ++ri) {
    const Res r = static_cast<Res>(ri);
    std::string lane(static_cast<std::size_t>(width), '.');
    for (const auto& iv : tl.intervals()) {
      if (iv.res != r || iv.end <= t0 || iv.start >= t1) continue;
      const int a = std::clamp(
          static_cast<int>((std::max(iv.start, t0) - t0) * scale), 0, width - 1);
      const int b = std::clamp(
          static_cast<int>((std::min(iv.end, t1) - t0) * scale), a + 1, width);
      for (int x = a; x < b; ++x) lane[static_cast<std::size_t>(x)] = '#';
    }
    out += pad(res_name(r), 9) + "|" + lane + "|\n";
  }

  // Event legend: list intervals that intersect the window, in start order.
  std::vector<Interval> evs;
  for (const auto& iv : tl.intervals()) {
    if (iv.end > t0 && iv.start < t1 && !iv.tag.empty()) evs.push_back(iv);
  }
  std::sort(evs.begin(), evs.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
  for (const auto& iv : evs) {
    out += "  [" + fmt_f(iv.start * 1e3, 2) + " - " + fmt_f(iv.end * 1e3, 2) +
           " ms] " + res_name(iv.res) + ": " + iv.tag + "\n";
  }
  return out;
}

}  // namespace daop::sim
