// Chrome-tracing (chrome://tracing, Perfetto) export of a recorded
// timeline: every scheduled interval becomes a complete ("X") event on its
// resource's track. Lets users inspect engine schedules interactively
// instead of through the ASCII gantt.
//
// When a SpanTracer is supplied, its tracks are appended as extra named
// threads (tid 100+), hazard-stall sub-intervals get a dedicated "Hazards"
// track, instant spans become "i" events, and recorded flows become "s"/"f"
// flow arrows (e.g. prediction issue -> pre-calc -> expert exec). With a
// null tracer and no recorded hazards, the output is byte-identical to the
// seed format.
#pragma once

#include <string>

#include "sim/timeline.hpp"

namespace daop::obs {
class SpanTracer;
}  // namespace daop::obs

namespace daop::sim {

/// Thread id of the hazard-stall track in the exported trace (resource
/// tracks occupy tids 0..3, tracer tracks start at kSpanTidBase).
inline constexpr int kHazardTid = 90;
inline constexpr int kSpanTidBase = 100;

/// Serializes the recorded intervals as Chrome Trace Event JSON (the
/// timeline must have been run with set_record_intervals(true)). A non-null
/// `tracer` contributes additional span tracks, instants and flow arrows.
/// `extra_top_level`, when non-empty, is a pre-rendered `"key":value`
/// fragment appended as an additional top-level member (Chrome tracing
/// ignores unknown members; `daop_cli serve` uses it for the per-request
/// outcome log). Empty (the default) keeps the output byte-identical.
std::string to_chrome_trace_json(const Timeline& tl,
                                 const obs::SpanTracer* tracer = nullptr,
                                 const std::string& extra_top_level = {});

/// Writes the JSON to `path`; returns false on I/O failure.
bool write_chrome_trace(const Timeline& tl, const std::string& path,
                        const obs::SpanTracer* tracer = nullptr,
                        const std::string& extra_top_level = {});

}  // namespace daop::sim
