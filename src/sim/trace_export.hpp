// Chrome-tracing (chrome://tracing, Perfetto) export of a recorded
// timeline: every scheduled interval becomes a complete ("X") event on its
// resource's track. Lets users inspect engine schedules interactively
// instead of through the ASCII gantt.
#pragma once

#include <string>

#include "sim/timeline.hpp"

namespace daop::sim {

/// Serializes the recorded intervals as Chrome Trace Event JSON (the
/// timeline must have been run with set_record_intervals(true)).
std::string to_chrome_trace_json(const Timeline& tl);

/// Writes the JSON to `path`; returns false on I/O failure.
bool write_chrome_trace(const Timeline& tl, const std::string& path);

}  // namespace daop::sim
