// Event-timeline scheduler for the performance-simulation plane.
//
// The paper's speedups are op-overlap phenomena at millisecond scale (GPU
// compute vs CPU expert execution vs PCIe transfers), so the simulator is an
// event timeline, not a cycle-accurate model. Each hardware resource
// serializes the work scheduled on it; cross-resource parallelism falls out
// of scheduling ops with explicit ready times (dependencies).
//
// Hot-path design (docs/PERFORMANCE.md): schedule() is called millions of
// times per sweep, so tags are interned TagIds against a per-timeline string
// pool (zero string work when interval recording is off — the common case)
// and recorded intervals live in structure-of-arrays columns with chunked
// reserve growth. The classic std::vector<Interval> view stays available via
// intervals()/hazard_intervals(), materialized on demand for the cold
// consumers (attribution, trace export, gantt, profiler).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace daop::sim {

class FaultModel;

/// Hardware resources that serialize work.
enum class Res : int {
  GpuStream = 0,  ///< GPU compute stream
  CpuPool,        ///< CPU worker pool (experts share memory bandwidth, so
                  ///< concurrent CPU experts serialize — conservative and
                  ///< accurate for memory-bound decode GEMV)
  PcieH2D,        ///< host-to-device DMA engine
  PcieD2H,        ///< device-to-host DMA engine
};

inline constexpr int kNumRes = 4;

const char* res_name(Res r);

/// Interned tag handle into a Timeline's TagPool. 0 is the empty tag.
using TagId = std::uint32_t;
inline constexpr TagId kNoTag = 0;

/// Per-timeline string pool: each distinct tag string is stored once and
/// addressed by TagId. Interning only happens while interval recording is
/// on, so untagged/unrecorded scheduling never touches strings at all.
class TagPool {
 public:
  TagPool();

  /// Returns the id for `s`, adding it to the pool on first sight.
  /// The empty string always interns to kNoTag.
  TagId intern(std::string_view s);

  /// The pooled string for `id` ("" for kNoTag). Valid for the pool's
  /// lifetime; ids are never invalidated.
  const std::string& view(TagId id) const;

  /// Number of distinct strings pooled (including the empty tag).
  std::size_t size() const { return strings_.size(); }

  void clear();

 private:
  std::vector<std::string> strings_;
  // Sorted (string, id) index; tag vocabularies are small (dozens of
  // distinct op names), so binary search beats hashing here and supports
  // heterogeneous string_view lookup without temporary strings.
  std::vector<std::pair<std::string, TagId>> index_;
};

/// One scheduled occupancy interval on a resource (compatibility view; the
/// Timeline's native storage is IntervalSoA).
struct Interval {
  Res res;
  double start = 0.0;
  double end = 0.0;
  std::string tag;  ///< e.g. "L5 expert3 exec", used by the gantt renderer
};

/// Structure-of-arrays interval storage: one column per Interval field,
/// tags as interned ids. Columns always have equal length.
struct IntervalSoA {
  std::vector<Res> res;
  std::vector<double> start;
  std::vector<double> end;
  std::vector<TagId> tag;

  std::size_t size() const { return res.size(); }
  bool empty() const { return res.empty(); }
  void clear();
  /// Reserves capacity in all columns at once.
  void reserve(std::size_t n);
  /// Appends one interval, growing all columns by arena-style chunks
  /// (doubling from a 1024-interval floor) so steady-state appends never
  /// reallocate mid-chunk.
  void push_back(Res r, double s, double e, TagId t);
};

class Timeline {
 public:
  Timeline();

  /// Schedules work of `duration` seconds on resource `r` that may not begin
  /// before `ready` (its dependencies' completion). Returns the finish time.
  /// The op starts at max(ready, resource busy-until). When a fault model is
  /// attached the op's duration is perturbed by the active hazard scenario;
  /// `ready` and `duration` must be finite and non-negative so perturbed ops
  /// can never move a resource's busy-until backwards.
  ///
  /// The string_view overload interns the tag only while interval recording
  /// is on; with recording off (the default) it is exactly the untagged hot
  /// path — no string is ever constructed, hashed, or copied.
  double schedule(Res r, double ready, double duration,
                  std::string_view tag = {});
  /// Pre-interned tag variant for callers that schedule the same op name in
  /// a tight loop (see intern_tag()).
  double schedule(Res r, double ready, double duration, TagId tag);

  /// Interns `tag` into this timeline's pool up front so a loop can call
  /// the TagId overload of schedule().
  TagId intern_tag(std::string_view tag) { return tags_.intern(tag); }

  /// Earliest time new work could start on `r`.
  double busy_until(Res r) const;

  /// Start time of the most recently scheduled op (0 before any schedule()).
  /// Lets callers derive exact span boundaries for tracing without
  /// re-deriving the resource queueing decision.
  double last_start() const { return last_start_; }

  /// Total busy seconds accumulated on `r`.
  double busy_time(Res r) const;

  /// Latest finish time across all resources (0 when empty).
  double span() const;

  /// Advances a resource's availability to at least `t` without recording
  /// busy time (used to model synchronization points).
  void block_until(Res r, double t);

  /// Compatibility view of the recorded intervals: materialized (and cached)
  /// from the SoA columns with tags formatted from the pool. The reference
  /// is invalidated by the next schedule()/reset(). Cold-path only —
  /// attribution, trace export, gantt and the profiler read this once per
  /// finished run; hot consumers should use intervals_soa().
  const std::vector<Interval>& intervals() const;

  /// Hazard-stall sub-intervals (the fault-injected tail of each perturbed
  /// op), recorded only while interval recording is on. Rendered as a
  /// dedicated "Hazards" track by the Chrome trace export. Same
  /// materialized-view contract as intervals().
  const std::vector<Interval>& hazard_intervals() const;

  /// Native structure-of-arrays interval storage (tags as TagIds; resolve
  /// through tag_pool().view()).
  const IntervalSoA& intervals_soa() const { return soa_; }
  const IntervalSoA& hazard_intervals_soa() const { return hazard_soa_; }
  const TagPool& tag_pool() const { return tags_; }

  /// Number of recorded intervals (without materializing the compat view).
  std::size_t interval_count() const { return soa_.size(); }

  /// Enables interval recording (tags + gantt). Off by default: long decode
  /// simulations only need aggregate busy times.
  void set_record_intervals(bool on) { record_ = on; }

  /// Pre-sizes the interval columns (e.g. when the caller knows the op
  /// count of the run it is about to schedule).
  void reserve_intervals(std::size_t n) { soa_.reserve(n); }

  /// Attaches a hazard-injection fault model; every subsequently scheduled
  /// op is perturbed through it, so all engines price hazards identically.
  /// nullptr (the default) restores exact unperturbed behaviour.
  void set_fault_model(FaultModel* fm) { fault_ = fm; }
  FaultModel* fault_model() const { return fault_; }

  /// Total hazard delay injected into scheduled ops (stalls, retries,
  /// contention and throttle slowdowns), in seconds.
  double hazard_stall_s() const { return hazard_stall_s_; }

  /// Link-level transfer retries injected by the fault model.
  long long hazard_transfer_retries() const {
    return hazard_transfer_retries_;
  }

  /// Clears all scheduled state and hazard telemetry; keeps the attached
  /// fault model (it is configuration, not state) and the interned tag
  /// vocabulary (ids stay stable across reset).
  void reset();

 private:
  std::array<double, kNumRes> busy_until_{};
  std::array<double, kNumRes> busy_time_{};
  IntervalSoA soa_;
  IntervalSoA hazard_soa_;
  TagPool tags_;
  TagId hazard_tag_ = kNoTag;  ///< lazily interned "hazard stall"
  // Materialized compatibility views, rebuilt on demand after mutation.
  mutable std::vector<Interval> compat_;
  mutable std::vector<Interval> hazard_compat_;
  mutable bool compat_dirty_ = false;
  mutable bool hazard_compat_dirty_ = false;
  double last_start_ = 0.0;
  bool record_ = false;
  FaultModel* fault_ = nullptr;
  double hazard_stall_s_ = 0.0;
  long long hazard_transfer_retries_ = 0;
};

/// Renders the recorded intervals of a timeline as an ASCII gantt chart over
/// [t0, t1], one lane per resource (the paper's Fig. 8 visualization).
std::string render_gantt(const Timeline& tl, double t0, double t1,
                         int width = 100);

}  // namespace daop::sim
