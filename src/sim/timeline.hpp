// Event-timeline scheduler for the performance-simulation plane.
//
// The paper's speedups are op-overlap phenomena at millisecond scale (GPU
// compute vs CPU expert execution vs PCIe transfers), so the simulator is an
// event timeline, not a cycle-accurate model. Each hardware resource
// serializes the work scheduled on it; cross-resource parallelism falls out
// of scheduling ops with explicit ready times (dependencies).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace daop::sim {

class FaultModel;

/// Hardware resources that serialize work.
enum class Res : int {
  GpuStream = 0,  ///< GPU compute stream
  CpuPool,        ///< CPU worker pool (experts share memory bandwidth, so
                  ///< concurrent CPU experts serialize — conservative and
                  ///< accurate for memory-bound decode GEMV)
  PcieH2D,        ///< host-to-device DMA engine
  PcieD2H,        ///< device-to-host DMA engine
};

inline constexpr int kNumRes = 4;

const char* res_name(Res r);

/// One scheduled occupancy interval on a resource.
struct Interval {
  Res res;
  double start = 0.0;
  double end = 0.0;
  std::string tag;  ///< e.g. "L5 expert3 exec", used by the gantt renderer
};

class Timeline {
 public:
  Timeline();

  /// Schedules work of `duration` seconds on resource `r` that may not begin
  /// before `ready` (its dependencies' completion). Returns the finish time.
  /// The op starts at max(ready, resource busy-until). When a fault model is
  /// attached the op's duration is perturbed by the active hazard scenario;
  /// `ready` and `duration` must be finite and non-negative so perturbed ops
  /// can never move a resource's busy-until backwards.
  double schedule(Res r, double ready, double duration, std::string tag = {});

  /// Earliest time new work could start on `r`.
  double busy_until(Res r) const;

  /// Start time of the most recently scheduled op (0 before any schedule()).
  /// Lets callers derive exact span boundaries for tracing without
  /// re-deriving the resource queueing decision.
  double last_start() const { return last_start_; }

  /// Total busy seconds accumulated on `r`.
  double busy_time(Res r) const;

  /// Latest finish time across all resources (0 when empty).
  double span() const;

  /// Advances a resource's availability to at least `t` without recording
  /// busy time (used to model synchronization points).
  void block_until(Res r, double t);

  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Hazard-stall sub-intervals (the fault-injected tail of each perturbed
  /// op), recorded only while interval recording is on. Rendered as a
  /// dedicated "Hazards" track by the Chrome trace export.
  const std::vector<Interval>& hazard_intervals() const {
    return hazard_intervals_;
  }

  /// Enables interval recording (tags + gantt). Off by default: long decode
  /// simulations only need aggregate busy times.
  void set_record_intervals(bool on) { record_ = on; }

  /// Attaches a hazard-injection fault model; every subsequently scheduled
  /// op is perturbed through it, so all engines price hazards identically.
  /// nullptr (the default) restores exact unperturbed behaviour.
  void set_fault_model(FaultModel* fm) { fault_ = fm; }
  FaultModel* fault_model() const { return fault_; }

  /// Total hazard delay injected into scheduled ops (stalls, retries,
  /// contention and throttle slowdowns), in seconds.
  double hazard_stall_s() const { return hazard_stall_s_; }

  /// Link-level transfer retries injected by the fault model.
  long long hazard_transfer_retries() const {
    return hazard_transfer_retries_;
  }

  /// Clears all scheduled state and hazard telemetry; keeps the attached
  /// fault model (it is configuration, not state).
  void reset();

 private:
  std::array<double, kNumRes> busy_until_{};
  std::array<double, kNumRes> busy_time_{};
  std::vector<Interval> intervals_;
  std::vector<Interval> hazard_intervals_;
  double last_start_ = 0.0;
  bool record_ = false;
  FaultModel* fault_ = nullptr;
  double hazard_stall_s_ = 0.0;
  long long hazard_transfer_retries_ = 0;
};

/// Renders the recorded intervals of a timeline as an ASCII gantt chart over
/// [t0, t1], one lane per resource (the paper's Fig. 8 visualization).
std::string render_gantt(const Timeline& tl, double t0, double t1,
                         int width = 100);

}  // namespace daop::sim
