// Platform energy model: integrates device active/idle power over a
// simulated timeline (reproduces the paper's wall-power measurement for
// Table IV energy efficiency).
#pragma once

#include "sim/device.hpp"
#include "sim/timeline.hpp"

namespace daop::sim {

struct EnergyBreakdown {
  double gpu_j = 0.0;
  double cpu_j = 0.0;
  double pcie_j = 0.0;   ///< transfer energy (attributed at link power)
  double base_j = 0.0;   ///< rest-of-platform
  double total_j = 0.0;
  double avg_power_w = 0.0;
};

/// Computes platform energy for a run that occupied `tl` over wall time
/// `duration_s` (>= tl.span(); callers may extend for idle tails).
EnergyBreakdown compute_energy(const PlatformSpec& platform,
                               const Timeline& tl, double duration_s);

}  // namespace daop::sim
