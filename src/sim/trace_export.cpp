#include "sim/trace_export.hpp"

#include <cstdio>
#include <fstream>

#include "obs/span_tracer.hpp"

namespace daop::sim {
namespace {

// Escapes the few characters that can appear in op tags.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void append_complete_event(std::string& out, bool& first,
                           const std::string& name, int tid, double start_s,
                           double end_s) {
  if (!first) out += ",\n";
  first = false;
  char buf[256];
  // ts/dur in microseconds, one pid, one tid per resource.
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                "\"ts\":%.3f,\"dur\":%.3f}",
                json_escape(name).c_str(), tid, start_s * 1e6,
                (end_s - start_s) * 1e6);
  out += buf;
}

void append_span_event(std::string& out, bool& first,
                       const obs::TraceSpan& sp) {
  if (!first) out += ",\n";
  first = false;
  const int tid = kSpanTidBase + static_cast<int>(sp.track);
  char buf[320];
  std::string args;
  if (sp.request >= 0) {
    char abuf[64];
    std::snprintf(abuf, sizeof(abuf), ",\"args\":{\"request\":%lld}",
                  static_cast<long long>(sp.request));
    args = abuf;
  }
  if (sp.end > sp.start) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                  "\"ts\":%.3f,\"dur\":%.3f%s}",
                  json_escape(sp.name).c_str(), tid, sp.start * 1e6,
                  (sp.end - sp.start) * 1e6, args.c_str());
  } else {
    // Zero-duration spans are instants ("i"), thread-scoped.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
                  "\"tid\":%d,\"ts\":%.3f%s}",
                  json_escape(sp.name).c_str(), tid, sp.start * 1e6,
                  args.c_str());
  }
  out += buf;
}

void append_flow_events(std::string& out, bool& first,
                        const obs::SpanTracer& tracer, std::size_t flow_idx) {
  const obs::TraceFlow& fl = tracer.flows()[flow_idx];
  // Span ids are 1-based indices into spans().
  const obs::TraceSpan& a = tracer.spans()[fl.from - 1];
  const obs::TraceSpan& b = tracer.spans()[fl.to - 1];
  const std::string name =
      json_escape(fl.name.empty() ? a.name + " -> " + b.name : fl.name);
  char buf[320];
  if (!first) out += ",\n";
  first = false;
  // Flow start anchors to the end of the producing span, flow finish (with
  // binding point "e" = enclosing slice) to the start of the consuming span.
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":%zu,"
                "\"pid\":1,\"tid\":%d,\"ts\":%.3f}",
                name.c_str(), flow_idx + 1,
                kSpanTidBase + static_cast<int>(a.track), a.end * 1e6);
  out += buf;
  out += ",\n";
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
                "\"id\":%zu,\"pid\":1,\"tid\":%d,\"ts\":%.3f}",
                name.c_str(), flow_idx + 1,
                kSpanTidBase + static_cast<int>(b.track), b.start * 1e6);
  out += buf;
}

}  // namespace

std::string to_chrome_trace_json(const Timeline& tl,
                                 const obs::SpanTracer* tracer,
                                 const std::string& extra_top_level) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& iv : tl.intervals()) {
    append_complete_event(out, first,
                          iv.tag.empty() ? res_name(iv.res) : iv.tag,
                          static_cast<int>(iv.res), iv.start, iv.end);
  }
  const bool have_hazards = !tl.hazard_intervals().empty();
  for (const auto& iv : tl.hazard_intervals()) {
    append_complete_event(out, first, iv.tag.empty() ? "hazard" : iv.tag,
                          kHazardTid, iv.start, iv.end);
  }
  if (tracer != nullptr) {
    for (const auto& sp : tracer->spans()) {
      append_span_event(out, first, sp);
    }
    for (std::size_t i = 0; i < tracer->flows().size(); ++i) {
      append_flow_events(out, first, *tracer, i);
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"metadata\":{";
  for (int r = 0; r < kNumRes; ++r) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"thread_name_%d\":\"%s\"",
                  r ? "," : "", r, res_name(static_cast<Res>(r)));
    out += buf;
  }
  if (have_hazards) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), ",\"thread_name_%d\":\"Hazards\"",
                  kHazardTid);
    out += buf;
  }
  if (tracer != nullptr) {
    for (std::size_t t = 0; t < tracer->tracks().size(); ++t) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), ",\"thread_name_%d\":\"%s\"",
                    kSpanTidBase + static_cast<int>(t),
                    json_escape(tracer->tracks()[t]).c_str());
      out += buf;
    }
  }
  out += "}";
  if (!extra_top_level.empty()) {
    out += ",";
    out += extra_top_level;
  }
  out += "}\n";
  return out;
}

bool write_chrome_trace(const Timeline& tl, const std::string& path,
                        const obs::SpanTracer* tracer,
                        const std::string& extra_top_level) {
  std::ofstream f(path);
  if (!f) return false;
  f << to_chrome_trace_json(tl, tracer, extra_top_level);
  return static_cast<bool>(f);
}

}  // namespace daop::sim
