#include "sim/trace_export.hpp"

#include <cstdio>
#include <fstream>

namespace daop::sim {
namespace {

// Escapes the few characters that can appear in op tags.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string to_chrome_trace_json(const Timeline& tl) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& iv : tl.intervals()) {
    if (!first) out += ",\n";
    first = false;
    char buf[256];
    // ts/dur in microseconds, one pid, one tid per resource.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                  "\"ts\":%.3f,\"dur\":%.3f}",
                  json_escape(iv.tag.empty() ? res_name(iv.res) : iv.tag).c_str(),
                  static_cast<int>(iv.res), iv.start * 1e6,
                  (iv.end - iv.start) * 1e6);
    out += buf;
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"metadata\":{";
  for (int r = 0; r < kNumRes; ++r) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"thread_name_%d\":\"%s\"",
                  r ? "," : "", r, res_name(static_cast<Res>(r)));
    out += buf;
  }
  out += "}}\n";
  return out;
}

bool write_chrome_trace(const Timeline& tl, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << to_chrome_trace_json(tl);
  return static_cast<bool>(f);
}

}  // namespace daop::sim
