// Hardware descriptions for the performance-simulation plane.
//
// The paper evaluates DAOP on a physical A6000 + i9-10980XE platform (and
// measures Table I on A100 + Xeon Gold 6326). We have no GPU in this
// environment, so the speed/energy experiments run against these calibrated
// specs through sim::CostModel and sim::Timeline. Efficiencies are calibrated
// so that Mixtral-8x7B per-op times match the paper's own Table I
// measurements (see bench_table1_op_times and tests/sim/cost_model_test).
#pragma once

#include <string>

namespace daop::sim {

/// A compute device (GPU or CPU) with roofline parameters and power draw.
struct DeviceSpec {
  std::string name;

  // Compute roofline.
  double flops_peak = 0.0;       ///< peak FLOP/s for the relevant dtype
  double flops_efficiency = 1.0; ///< sustained fraction of peak

  // Memory roofline.
  double mem_bw_bytes_per_s = 0.0;  ///< peak DRAM/HBM bandwidth
  double mem_bw_efficiency = 1.0;   ///< sustained fraction of peak

  double kernel_overhead_s = 0.0;   ///< per-kernel launch/dispatch cost

  double mem_capacity_bytes = 0.0;

  // Power model (device contribution to platform power).
  double active_power_w = 0.0;
  double idle_power_w = 0.0;

  /// Effective sustained compute throughput.
  double flops() const { return flops_peak * flops_efficiency; }
  /// Effective sustained memory bandwidth.
  double mem_bw() const { return mem_bw_bytes_per_s * mem_bw_efficiency; }
};

/// A host<->device interconnect (one direction).
struct LinkSpec {
  std::string name;
  double bw_bytes_per_s = 0.0;  ///< nominal bandwidth
  double efficiency = 1.0;      ///< sustained fraction (expert tensors are
                                ///< large but non-contiguous + pageable host
                                ///< memory; measured efficiency is low)
  double latency_s = 0.0;       ///< per-transfer setup latency

  double bw() const { return bw_bytes_per_s * efficiency; }
};

/// A complete evaluation platform.
struct PlatformSpec {
  std::string name;
  DeviceSpec gpu;
  DeviceSpec cpu;
  LinkSpec pcie_h2d;  ///< host (CPU) -> device (GPU)
  LinkSpec pcie_d2h;  ///< device (GPU) -> host (CPU)
  double base_power_w = 0.0;  ///< rest-of-platform power (board, DRAM, fans)
};

/// Paper evaluation platform: NVIDIA A6000 (48 GB, 768 GB/s) +
/// Intel i9-10980XE (18 cores @3.0 GHz, 130 GB host memory), PCIe 4.0 x16.
PlatformSpec a6000_i9_platform();

/// Table I measurement platform: NVIDIA A100 + Intel Xeon Gold 6326.
PlatformSpec a100_xeon_platform();

/// A consumer desktop (RTX-4090-class) used by the capacity-planner example
/// to illustrate the §VI-A applicability assumptions.
PlatformSpec rtx4090_desktop_platform();

/// A laptop-class dGPU platform (narrow PCIe, small VRAM) for the same
/// example: CPU-GPU transfer latency >> CPU expert execution.
PlatformSpec laptop_platform();

}  // namespace daop::sim
