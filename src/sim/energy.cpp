#include "sim/energy.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace daop::sim {

EnergyBreakdown compute_energy(const PlatformSpec& platform,
                               const Timeline& tl, double duration_s) {
  DAOP_CHECK_GE(duration_s, tl.span() - 1e-9);
  EnergyBreakdown e;

  const double gpu_busy = std::min(tl.busy_time(Res::GpuStream), duration_s);
  const double pcie_busy =
      std::min(tl.busy_time(Res::PcieH2D) + tl.busy_time(Res::PcieD2H),
               duration_s);
  // Host-side DMA from pageable tensors is CPU-mediated (staging memcpy),
  // so the CPU is active for the duration of every transfer — this is what
  // makes GPU-only offloading engines draw near-active platform power in
  // the paper's wall-socket measurements.
  const double cpu_busy =
      std::min(tl.busy_time(Res::CpuPool) + pcie_busy, duration_s);

  e.gpu_j = platform.gpu.active_power_w * gpu_busy +
            platform.gpu.idle_power_w * (duration_s - gpu_busy);
  e.cpu_j = platform.cpu.active_power_w * cpu_busy +
            platform.cpu.idle_power_w * (duration_s - cpu_busy);
  // PCIe transfers burn power on both root complex and device PHY; a flat
  // 15 W during DMA matches published PCIe4 x16 PHY figures closely enough
  // for a ranking experiment.
  e.pcie_j = 15.0 * pcie_busy;
  e.base_j = platform.base_power_w * duration_s;
  e.total_j = e.gpu_j + e.cpu_j + e.pcie_j + e.base_j;
  e.avg_power_w = duration_s > 0.0 ? e.total_j / duration_s : 0.0;
  return e;
}

}  // namespace daop::sim
