// Numerical kernels for the functional MoE model.
//
// All kernels operate on float spans / Tensor views and are deterministic:
// reductions use a fixed accumulation order so results are identical across
// runs and thread counts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace daop {

// ---- GEMV / GEMM -----------------------------------------------------------

/// y = W * x where W is [rows, cols] and x has `cols` elements.
void matvec(const Tensor& w, std::span<const float> x, std::span<float> y);

/// y = W^T * x where W is [rows, cols] and x has `rows` elements.
void matvec_transposed(const Tensor& w, std::span<const float> x,
                       std::span<float> y);

/// C = A * B with A [m,k], B [k,n]; C must be preallocated [m,n].
/// Parallelized over rows of A via the global thread pool.
void matmul(const Tensor& a, const Tensor& b, Tensor& c);

// ---- Elementwise / reductions ----------------------------------------------

void add_inplace(std::span<float> a, std::span<const float> b);
void scale_inplace(std::span<float> a, float s);
/// a += s * b
void axpy_inplace(std::span<float> a, float s, std::span<const float> b);

float dot(std::span<const float> a, std::span<const float> b);
float l2_norm(std::span<const float> a);

/// Cosine similarity; returns 0 when either vector is all-zero.
double cosine_similarity(std::span<const float> a, std::span<const float> b);
double cosine_similarity(std::span<const double> a, std::span<const double> b);

/// In-place numerically stable softmax.
void softmax_inplace(std::span<float> x);

/// Softmax restricted to `idx` entries of x (others untouched); used for
/// renormalizing top-k gate scores. Writes normalized probabilities into out
/// (same length as idx).
void softmax_subset(std::span<const float> x, std::span<const int> idx,
                    std::span<float> out);

// ---- Normalization / activations -------------------------------------------

/// RMSNorm: out = x / rms(x) * gain (gain has the same length as x).
void rmsnorm(std::span<const float> x, std::span<const float> gain,
             float eps, std::span<float> out);

float silu(float x);
void silu_inplace(std::span<float> x);

// ---- Rotary position embedding ---------------------------------------------

/// Applies RoPE in-place to a [n_heads * head_dim] vector at position `pos`.
/// Pairs are (2i, 2i+1) within each head, standard LLaMA/Mixtral convention.
void rope_inplace(std::span<float> x, int n_heads, int head_dim, int pos,
                  float theta);

// ---- Selection ---------------------------------------------------------------

/// Indices of the k largest values, ordered by descending value
/// (ties broken by lower index, making selection deterministic).
std::vector<int> topk_indices(std::span<const float> x, int k);

int argmax(std::span<const float> x);

}  // namespace daop
