#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace daop {

void matvec(const Tensor& w, std::span<const float> x, std::span<float> y) {
  DAOP_CHECK_EQ(w.rank(), 2);
  DAOP_CHECK_EQ(static_cast<std::int64_t>(x.size()), w.cols());
  DAOP_CHECK_EQ(static_cast<std::int64_t>(y.size()), w.rows());
  const std::int64_t rows = w.rows();
  const std::int64_t cols = w.cols();
  const float* wd = w.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* wr = wd + r * cols;
    float acc = 0.0F;
    for (std::int64_t c = 0; c < cols; ++c) acc += wr[c] * x[c];
    y[static_cast<std::size_t>(r)] = acc;
  }
}

void matvec_transposed(const Tensor& w, std::span<const float> x,
                       std::span<float> y) {
  DAOP_CHECK_EQ(w.rank(), 2);
  DAOP_CHECK_EQ(static_cast<std::int64_t>(x.size()), w.rows());
  DAOP_CHECK_EQ(static_cast<std::int64_t>(y.size()), w.cols());
  const std::int64_t rows = w.rows();
  const std::int64_t cols = w.cols();
  std::fill(y.begin(), y.end(), 0.0F);
  const float* wd = w.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float xr = x[static_cast<std::size_t>(r)];
    if (xr == 0.0F) continue;
    const float* wr = wd + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) y[static_cast<std::size_t>(c)] += xr * wr[c];
  }
}

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  DAOP_CHECK_EQ(a.rank(), 2);
  DAOP_CHECK_EQ(b.rank(), 2);
  DAOP_CHECK_EQ(c.rank(), 2);
  DAOP_CHECK_EQ(a.cols(), b.rows());
  DAOP_CHECK_EQ(c.rows(), a.rows());
  DAOP_CHECK_EQ(c.cols(), b.cols());
  const std::int64_t m = a.rows();
  const std::int64_t k = a.cols();
  const std::int64_t n = b.cols();
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();

  ThreadPool::global().parallel_for(m, [&](std::int64_t i) {
    float* crow = cd + i * n;
    std::fill(crow, crow + n, 0.0F);
    const float* arow = ad + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0F) continue;
      const float* brow = bd + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
}

void add_inplace(std::span<float> a, std::span<const float> b) {
  DAOP_CHECK_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void scale_inplace(std::span<float> a, float s) {
  for (auto& v : a) v *= s;
}

void axpy_inplace(std::span<float> a, float s, std::span<const float> b) {
  DAOP_CHECK_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

float dot(std::span<const float> a, std::span<const float> b) {
  DAOP_CHECK_EQ(a.size(), b.size());
  float acc = 0.0F;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

float l2_norm(std::span<const float> a) { return std::sqrt(dot(a, a)); }

namespace {

template <typename T>
double cosine_impl(std::span<const T> a, std::span<const T> b) {
  DAOP_CHECK_EQ(a.size(), b.size());
  double ab = 0.0;
  double aa = 0.0;
  double bb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ab += static_cast<double>(a[i]) * b[i];
    aa += static_cast<double>(a[i]) * a[i];
    bb += static_cast<double>(b[i]) * b[i];
  }
  if (aa == 0.0 || bb == 0.0) return 0.0;
  return ab / (std::sqrt(aa) * std::sqrt(bb));
}

}  // namespace

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  return cosine_impl(a, b);
}

double cosine_similarity(std::span<const double> a,
                         std::span<const double> b) {
  return cosine_impl(a, b);
}

void softmax_inplace(std::span<float> x) {
  DAOP_CHECK(!x.empty());
  float mx = x[0];
  for (float v : x) mx = std::max(mx, v);
  float sum = 0.0F;
  for (auto& v : x) {
    v = std::exp(v - mx);
    sum += v;
  }
  for (auto& v : x) v /= sum;
}

void softmax_subset(std::span<const float> x, std::span<const int> idx,
                    std::span<float> out) {
  DAOP_CHECK_EQ(idx.size(), out.size());
  DAOP_CHECK(!idx.empty());
  float mx = x[static_cast<std::size_t>(idx[0])];
  for (int i : idx) {
    DAOP_CHECK(i >= 0 && static_cast<std::size_t>(i) < x.size());
    mx = std::max(mx, x[static_cast<std::size_t>(i)]);
  }
  float sum = 0.0F;
  for (std::size_t j = 0; j < idx.size(); ++j) {
    out[j] = std::exp(x[static_cast<std::size_t>(idx[j])] - mx);
    sum += out[j];
  }
  for (auto& v : out) v /= sum;
}

void rmsnorm(std::span<const float> x, std::span<const float> gain, float eps,
             std::span<float> out) {
  DAOP_CHECK_EQ(x.size(), gain.size());
  DAOP_CHECK_EQ(x.size(), out.size());
  double ss = 0.0;
  for (float v : x) ss += static_cast<double>(v) * v;
  const float inv =
      1.0F / std::sqrt(static_cast<float>(ss / static_cast<double>(x.size())) + eps);
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] * inv * gain[i];
}

float silu(float x) { return x / (1.0F + std::exp(-x)); }

void silu_inplace(std::span<float> x) {
  for (auto& v : x) v = silu(v);
}

void rope_inplace(std::span<float> x, int n_heads, int head_dim, int pos,
                  float theta) {
  DAOP_CHECK_EQ(static_cast<int>(x.size()), n_heads * head_dim);
  DAOP_CHECK_EQ(head_dim % 2, 0);
  for (int h = 0; h < n_heads; ++h) {
    float* base = x.data() + static_cast<std::size_t>(h) * head_dim;
    for (int i = 0; i < head_dim; i += 2) {
      const float freq =
          std::pow(theta, -static_cast<float>(i) / static_cast<float>(head_dim));
      const float angle = static_cast<float>(pos) * freq;
      const float c = std::cos(angle);
      const float s = std::sin(angle);
      const float x0 = base[i];
      const float x1 = base[i + 1];
      base[i] = x0 * c - x1 * s;
      base[i + 1] = x0 * s + x1 * c;
    }
  }
}

std::vector<int> topk_indices(std::span<const float> x, int k) {
  DAOP_CHECK_GE(k, 0);
  DAOP_CHECK_LE(static_cast<std::size_t>(k), x.size());
  // Repeated max-scan over the strict total order (score desc, index asc).
  // (score, index) pairs are distinct, so the top-k sequence is uniquely
  // determined and this matches a partial_sort with the same comparator
  // exactly — but with no index scratch vector and O(k*n) work, which wins
  // for MoE routing's tiny k (top-2 of 8 experts) on the hottest call site
  // in the simulator (every token × layer of every generated trace).
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(k));
  float prev_x = 0.0f;
  int prev_i = -1;
  for (int round = 0; round < k; ++round) {
    int best = -1;
    float best_x = 0.0f;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const float xi = x[i];
      const int ii = static_cast<int>(i);
      // Only elements ranked strictly after the previous pick remain.
      if (prev_i >= 0 && !(xi < prev_x || (xi == prev_x && ii > prev_i))) {
        continue;
      }
      // Ascending scan + strict improvement keeps the lowest index on ties.
      if (best < 0 || xi > best_x) {
        best = ii;
        best_x = xi;
      }
    }
    out.push_back(best);
    prev_x = best_x;
    prev_i = best;
  }
  return out;
}

int argmax(std::span<const float> x) {
  DAOP_CHECK(!x.empty());
  int best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[static_cast<std::size_t>(best)]) best = static_cast<int>(i);
  }
  return best;
}

}  // namespace daop
