// Grouped symmetric integer quantization for expert weights.
//
// Mixtral-Offloading ships experts with mixed ~4-bit quantization and
// EdgeMoE adapts per-expert bit-width; this module provides the substrate
// those baselines (and the DAOP cpu_quant_bits extension) build on:
// per-row, per-group symmetric quantization with on-the-fly dequant GEMV.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace daop {

struct QuantSpec {
  int bits = 8;        ///< 2..8 (stored one value per int8 slot)
  int group_size = 64; ///< values sharing one scale within a row

  /// Effective bytes per weight including scales (fp16 scale per group),
  /// used by the performance plane to size quantized transfers/reads.
  double bytes_per_weight() const {
    return bits / 8.0 + 2.0 / group_size;
  }
};

/// A rank-2 tensor quantized per row in groups of `spec.group_size`.
class QuantizedTensor {
 public:
  QuantizedTensor() = default;

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  const QuantSpec& spec() const { return spec_; }

  /// Quantizes `w` (rank-2). Rows need not be multiples of group_size; the
  /// final group of a row may be short.
  static QuantizedTensor quantize(const Tensor& w, const QuantSpec& spec);

  /// Reconstructs the full-precision approximation.
  Tensor dequantize() const;

  /// y = Wq * x with dequantization fused into the GEMV.
  void matvec(std::span<const float> x, std::span<float> y) const;

 private:
  QuantSpec spec_;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t groups_per_row_ = 0;
  std::vector<std::int8_t> q_;      ///< rows * cols values
  std::vector<float> scales_;       ///< rows * groups_per_row
};

/// Root-mean-square relative quantization error of `w` under `spec`
/// (||W - deq(quant(W))||_rms / ||W||_rms); 0 for exactly representable.
double quantization_rms_error(const Tensor& w, const QuantSpec& spec);

}  // namespace daop
