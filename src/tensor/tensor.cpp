#include "tensor/tensor.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace daop {

Tensor::Tensor(std::int64_t n) {
  DAOP_CHECK_GE(n, 0);
  data_.assign(static_cast<std::size_t>(n), 0.0F);
  shape_ = {n};
}

Tensor::Tensor(std::int64_t rows, std::int64_t cols) {
  DAOP_CHECK_GE(rows, 0);
  DAOP_CHECK_GE(cols, 0);
  data_.assign(static_cast<std::size_t>(rows * cols), 0.0F);
  shape_ = {rows, cols};
}

Tensor Tensor::from(std::initializer_list<float> values) {
  Tensor t(static_cast<std::int64_t>(values.size()));
  std::int64_t i = 0;
  for (float v : values) t.at(i++) = v;
  return t;
}

Tensor Tensor::randn(std::int64_t rows, std::int64_t cols, Rng& rng,
                     float stddev) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

std::int64_t Tensor::rows() const {
  DAOP_CHECK_EQ(rank(), 2);
  return shape_[0];
}

std::int64_t Tensor::cols() const {
  DAOP_CHECK_EQ(rank(), 2);
  return shape_[1];
}

std::span<float> Tensor::row(std::int64_t r) {
  DAOP_CHECK_EQ(rank(), 2);
  DAOP_CHECK(r >= 0 && r < shape_[0]);
  return {data_.data() + r * shape_[1], static_cast<std::size_t>(shape_[1])};
}

std::span<const float> Tensor::row(std::int64_t r) const {
  DAOP_CHECK_EQ(rank(), 2);
  DAOP_CHECK(r >= 0 && r < shape_[0]);
  return {data_.data() + r * shape_[1], static_cast<std::size_t>(shape_[1])};
}

float& Tensor::at(std::int64_t i) {
  DAOP_CHECK(i >= 0 && i < numel());
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::at(std::int64_t i) const {
  DAOP_CHECK(i >= 0 && i < numel());
  return data_[static_cast<std::size_t>(i)];
}

float& Tensor::at(std::int64_t r, std::int64_t c) {
  DAOP_CHECK_EQ(rank(), 2);
  DAOP_CHECK(r >= 0 && r < shape_[0]);
  DAOP_CHECK(c >= 0 && c < shape_[1]);
  return data_[static_cast<std::size_t>(r * shape_[1] + c)];
}

float Tensor::at(std::int64_t r, std::int64_t c) const {
  DAOP_CHECK_EQ(rank(), 2);
  DAOP_CHECK(r >= 0 && r < shape_[0]);
  DAOP_CHECK(c >= 0 && c < shape_[1]);
  return data_[static_cast<std::size_t>(r * shape_[1] + c)];
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

std::string Tensor::shape_str() const {
  std::string s = "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape_[i]);
  }
  return s + "]";
}

}  // namespace daop
