#include "tensor/quant.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace daop {

QuantizedTensor QuantizedTensor::quantize(const Tensor& w,
                                          const QuantSpec& spec) {
  DAOP_CHECK_EQ(w.rank(), 2);
  DAOP_CHECK(spec.bits >= 2 && spec.bits <= 8);
  DAOP_CHECK_GT(spec.group_size, 0);

  QuantizedTensor out;
  out.spec_ = spec;
  out.rows_ = w.rows();
  out.cols_ = w.cols();
  out.groups_per_row_ = (w.cols() + spec.group_size - 1) / spec.group_size;
  out.q_.resize(static_cast<std::size_t>(out.rows_ * out.cols_));
  out.scales_.resize(static_cast<std::size_t>(out.rows_ * out.groups_per_row_));

  const int qmax = (1 << (spec.bits - 1)) - 1;  // symmetric: [-qmax, qmax]
  for (std::int64_t r = 0; r < out.rows_; ++r) {
    const auto row = w.row(r);
    for (std::int64_t g = 0; g < out.groups_per_row_; ++g) {
      const std::int64_t c0 = g * spec.group_size;
      const std::int64_t c1 = std::min<std::int64_t>(out.cols_, c0 + spec.group_size);
      float amax = 0.0F;
      for (std::int64_t c = c0; c < c1; ++c) {
        amax = std::max(amax, std::abs(row[static_cast<std::size_t>(c)]));
      }
      const float scale = amax > 0.0F ? amax / static_cast<float>(qmax) : 1.0F;
      out.scales_[static_cast<std::size_t>(r * out.groups_per_row_ + g)] = scale;
      for (std::int64_t c = c0; c < c1; ++c) {
        const float v = row[static_cast<std::size_t>(c)] / scale;
        const int qi = std::clamp(static_cast<int>(std::lround(v)), -qmax, qmax);
        out.q_[static_cast<std::size_t>(r * out.cols_ + c)] =
            static_cast<std::int8_t>(qi);
      }
    }
  }
  return out;
}

Tensor QuantizedTensor::dequantize() const {
  Tensor out(rows_, cols_);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t c = 0; c < cols_; ++c) {
      const float scale =
          scales_[static_cast<std::size_t>(r * groups_per_row_ + c / spec_.group_size)];
      out.at(r, c) =
          static_cast<float>(q_[static_cast<std::size_t>(r * cols_ + c)]) * scale;
    }
  }
  return out;
}

void QuantizedTensor::matvec(std::span<const float> x,
                             std::span<float> y) const {
  DAOP_CHECK_EQ(static_cast<std::int64_t>(x.size()), cols_);
  DAOP_CHECK_EQ(static_cast<std::int64_t>(y.size()), rows_);
  for (std::int64_t r = 0; r < rows_; ++r) {
    const std::int8_t* qr = q_.data() + r * cols_;
    const float* sr = scales_.data() + r * groups_per_row_;
    float acc = 0.0F;
    for (std::int64_t g = 0; g < groups_per_row_; ++g) {
      const std::int64_t c0 = g * spec_.group_size;
      const std::int64_t c1 = std::min<std::int64_t>(cols_, c0 + spec_.group_size);
      float gacc = 0.0F;
      for (std::int64_t c = c0; c < c1; ++c) {
        gacc += static_cast<float>(qr[c]) * x[static_cast<std::size_t>(c)];
      }
      acc += gacc * sr[g];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

double quantization_rms_error(const Tensor& w, const QuantSpec& spec) {
  const Tensor deq = QuantizedTensor::quantize(w, spec).dequantize();
  double err = 0.0;
  double ref = 0.0;
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    const double d = static_cast<double>(w.data()[i]) - deq.data()[i];
    err += d * d;
    ref += static_cast<double>(w.data()[i]) * w.data()[i];
  }
  if (ref == 0.0) return 0.0;
  return std::sqrt(err / ref);
}

}  // namespace daop
