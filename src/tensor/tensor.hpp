// Dense row-major float32 tensor used by the functional model plane.
//
// This is intentionally a small, predictable container rather than a general
// ND framework: the functional MoE model only needs 1-D vectors and 2-D
// matrices, and keeping the type simple keeps the numerics auditable.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace daop {

class Rng;

/// Row-major float tensor of rank 1 or 2.
class Tensor {
 public:
  Tensor() = default;

  /// Rank-1 tensor of `n` zeros.
  explicit Tensor(std::int64_t n);

  /// Rank-2 tensor of zeros with shape [rows, cols].
  Tensor(std::int64_t rows, std::int64_t cols);

  /// Builds a rank-1 tensor from values.
  static Tensor from(std::initializer_list<float> values);

  /// Gaussian init with stddev (default scaled for model weights).
  static Tensor randn(std::int64_t rows, std::int64_t cols, Rng& rng,
                      float stddev);

  std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t rows() const;
  std::int64_t cols() const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  const std::vector<std::int64_t>& shape() const { return shape_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return data_; }
  std::span<const float> span() const { return data_; }

  /// Mutable row view of a rank-2 tensor.
  std::span<float> row(std::int64_t r);
  std::span<const float> row(std::int64_t r) const;

  float& at(std::int64_t i);
  float at(std::int64_t i) const;
  float& at(std::int64_t r, std::int64_t c);
  float at(std::int64_t r, std::int64_t c) const;

  void fill(float v);

  std::string shape_str() const;

 private:
  std::vector<float> data_;
  std::vector<std::int64_t> shape_;
};

}  // namespace daop
