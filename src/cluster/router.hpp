// ClusterRouter: fault-tolerant dispatch across N replicated serving nodes.
//
// One node is the single-device serving plane PR 1-5 built: an engine, a
// sim::Timeline, a cache::PlacementArbiter-owned expert placement, a
// degradation controller, and a continuous-batching-style session loop
// (admit the queue head into a free slot, or advance the least-advanced
// in-flight session by one token — eval/continuous_batching.cpp's loop,
// replicated per node). The router composes N of them behind one dispatch
// point and adds the robustness plane the ROADMAP's "millions of users"
// target needs:
//
//  - DISPATCH POLICIES: round-robin (rotation over eligible nodes),
//    least-loaded (queue depth, then projected admission start), and
//    expert-affinity (MoE-Infinity-style: score each node by the fraction
//    of the sequence's prefill activation signature resident in the node's
//    GPU expert cache; sticky-routes similar sequences to warm replicas).
//  - NODE FAULTS: a node whose FaultModel draws a crash dies at a
//    deterministic per-seed simulated time; in-flight sessions are
//    destroyed WITHOUT close() (their arbiter pins are released by the
//    session's RAII pin guard), queued work is lost, and the node never
//    returns. Brownouts slow one node's GPU/PCIe ops; link degradation
//    inflates one node's dispatch latency.
//  - HEALTH-CHECKED ROUTING: a HealthChecker (cluster/health.hpp) probes on
//    a simulated cadence and ejects/re-admits nodes; ejected nodes drain
//    their in-flight work but receive no new dispatches. With health
//    checking off the router keeps dispatching to dead nodes — each such
//    dispatch is only discovered lost after a failover backoff.
//  - SESSION FAILOVER: a request whose every live copy is lost (node crash
//    or dead dispatch) is re-dispatched to another node under a bounded
//    per-request retry budget, re-running prefill from the recorded routing
//    trace; every token a dead predecessor generated is accounted as
//    replayed. Budget exhausted => shed with ShedReason::kNodeLost.
//  - HEDGED DISPATCH (optional): when the chosen node's projected TTFT
//    exceeds a threshold the request is duplicated to a second node; the
//    first completed copy wins, the loser is cancelled and its pins
//    released (SequenceSession::abandon).
//
// Deterministic and single-threaded: every decision is a pure function of
// (enqueue order, per-seed node fault draws), with fixed tie-breaks — event
// priority crash < probe < dispatch < node admit/step, then lowest node id.
// Conservation is DAOP_CHECKed: every request resolves exactly once
// (served or shed) no matter how many copies or failover attempts it
// consumed, and every node's arbiter ends with zero pins.
#pragma once

#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cache/arbiter.hpp"
#include "cache/expert_cache.hpp"
#include "cache/placement.hpp"
#include "cluster/health.hpp"
#include "data/routing_trace.hpp"
#include "engines/engine.hpp"
#include "engines/session.hpp"
#include "eval/overload.hpp"
#include "obs/span_tracer.hpp"
#include "obs/timeseries.hpp"
#include "recovery/checkpoint_store.hpp"
#include "sim/fault_model.hpp"
#include "sim/timeline.hpp"

namespace daop::cluster {

enum class DispatchPolicy {
  kRoundRobin,
  kLeastLoaded,
  kExpertAffinity,
};

const char* dispatch_policy_name(DispatchPolicy policy);
/// Parses "round-robin" | "least-loaded" | "expert-affinity"; CHECK-fails
/// with a message listing the valid names otherwise.
DispatchPolicy parse_dispatch_policy(const std::string& name);

/// Router configuration. Defaults give a plain round-robin router with one
/// failover retry and no health checking, hedging, or deadlines.
struct ClusterOptions {
  /// In-flight session bound per node (same meaning as the single-node
  /// scheduler's max_concurrent).
  int max_concurrent_per_node = 4;
  DispatchPolicy dispatch = DispatchPolicy::kRoundRobin;
  HealthOptions health;
  /// Failover: how many times one request may be re-dispatched after its
  /// copies were lost (node crash or dispatch to a dead node) before it is
  /// shed with ShedReason::kNodeLost.
  int failover_budget = 1;
  /// Delay between losing a request and its failover re-dispatch; also the
  /// detection delay for a dispatch sent to a dead node. Must be > 0 so
  /// retry loops always advance simulated time.
  double failover_backoff_s = 0.01;
  /// Projected admission-to-first-token service time (operators calibrate
  /// it from a calm run, like OverloadOptions::service_estimate_s). Drives
  /// least-loaded scoring, slow-probe detection, deadline shedding and the
  /// hedging trigger.
  double service_estimate_s = 0.0;
  /// Per-request first-token budget measured from the ORIGINAL arrival
  /// (failovers never extend it). A copy whose projected first token lands
  /// past the deadline is dropped at admission; when that was the last live
  /// copy the request is shed (kDeadline). 0 = no deadline.
  double deadline_s = 0.0;
  /// Hedged dispatch: when > 0 and the chosen node's projected TTFT at
  /// dispatch exceeds this threshold, the request is duplicated to the
  /// least-loaded other eligible node. First completion wins; the losing
  /// copy is cancelled with its pins released. 0 disables hedging.
  double hedge_ttft_threshold_s = 0.0;
  /// Per-node degradation ladder (eval/overload.hpp), observed at each
  /// node's admissions with that node's own fault-plane telemetry.
  eval::DegradationOptions degrade;
  /// Dynamic expert-cache policy (cache/expert_cache.hpp), instantiated
  /// PER NODE: each replica's cache scores demand across its own live
  /// sessions. Policy `frozen` (the default) constructs no caches and keeps
  /// every node on its prefill-frozen placement (bit-identical).
  cache::ExpertCacheOptions cache;
  /// Crash-consistent checkpointing (recovery/checkpoint_store.hpp),
  /// instantiated PER NODE when enabled: decoding sessions snapshot at the
  /// configured cadence (durable writes priced on the node timeline), and a
  /// failover re-dispatch warm-restarts from the newest valid snapshot
  /// found on ANY node's store instead of replaying prefill. Disabled (the
  /// default) performs zero checkpoint work and zero fault-stream draws —
  /// bit-identical to the pre-recovery router.
  recovery::CheckpointOptions checkpoint;
  /// Explicit chaos injection for acceptance tests: crash `crash_node` at
  /// exactly `crash_time_s` (overrides that node's fault-model crash draw).
  /// -1 = no override.
  int crash_node = -1;
  double crash_time_s = 0.0;
  /// Receives router-level instants (crashes, ejections, failovers,
  /// hedges). nullptr disables.
  obs::SpanTracer* tracer = nullptr;
  /// Windowed time-series recorder (obs/timeseries.hpp). Channel
  /// convention: channels 0..n_nodes-1 carry per-node series (hazard
  /// stall, queue depth, active sessions, dispatches, checkpoint writes);
  /// channel n_nodes is the router-level "cluster" channel (client-observed
  /// outcome counters and latency histograms, crashes, health transitions,
  /// loss episodes). Strictly passive like the tracer: consulted only after
  /// each event is chosen, behind a null-pointer gate. nullptr disables.
  obs::TimeSeriesRecorder* tseries = nullptr;
  /// Turns on per-node Timeline interval recording so a profiler can
  /// attribute each node's whole window after the run. Recording is passive
  /// by Timeline contract — it never changes a scheduling decision.
  bool record_intervals = false;

  void validate() const;
};

/// Why a lost request copy triggered a failover re-dispatch.
enum class FailoverReason {
  kNodeCrash,     ///< the node died with the copy queued or in flight
  kDeadDispatch,  ///< the copy was dispatched to an already-dead node
                  ///< (health checking off, or the crash not yet detected)
};

/// Router-level telemetry for one completed run.
struct ClusterStats {
  long long dispatches = 0;  ///< request copies handed to a node
  long long failovers_node_crash = 0;
  long long failovers_dead_dispatch = 0;
  long long replayed_tokens = 0;  ///< tokens regenerated by failover re-runs
  long long hedges = 0;        ///< duplicated dispatches issued
  long long hedge_wins = 0;    ///< requests whose hedge copy finished first
  long long hedge_cancels = 0; ///< losing copies cancelled
  long long shed_node_lost = 0;
  long long shed_deadline = 0;
  long long shed_degraded = 0;
  long long crashes = 0;
  long long ejections = 0;
  long long readmissions = 0;
  std::vector<long long> node_dispatched;  ///< per node
  std::vector<long long> node_served;      ///< per node
  /// Per-node end state: 0 = crashed, 1 = alive but ejected, 2 = in
  /// service.
  std::vector<int> node_final_state;

  long long failovers_total() const {
    return failovers_node_crash + failovers_dead_dispatch;
  }
};

/// One loss episode's resolution (test/telemetry record). A loss episode
/// opens when a request's LAST live copy is lost and closes exactly once:
/// warm-restored from a checkpoint, replayed from prefill, or shed.
struct RestoreEvent {
  long long request_id = 0;
  int node = -1;          ///< node the recovered session was admitted on
  bool restored = false;  ///< warm restore (else prefill replay)
  long long step = 0;     ///< decode step resumed at (0 for replay)
  double loss_time = 0.0;   ///< when the last live copy was lost
  double admit_time = 0.0;  ///< when the recovered copy was admitted
  double latency_s = 0.0;   ///< recovery frontier - loss_time
};

/// Warm-restart recovery telemetry for one completed run. Conservation is
/// DAOP_CHECKed at the end of run():
///   lost_sessions == recovered_restored + recovered_replayed +
///                    recovered_shed.
struct RecoveryStats {
  // Checkpoint plane (aggregated over every node's store).
  long long checkpoints_written = 0;
  long long checkpoint_bytes = 0;
  long long torn_writes = 0;     ///< injected torn writes + died-with-node
  long long corrupt_writes = 0;  ///< injected single-byte corruptions
  long long torn_rejected = 0;   ///< snapshots rejected by unseal() at scan
  // Restore plane.
  long long restores = 0;         ///< successful SequenceSession::restore
  long long restored_tokens = 0;  ///< decode steps NOT regenerated
  long long fallbacks_no_checkpoint = 0;  ///< no valid snapshot anywhere
  long long fallbacks_invalid = 0;        ///< restore() rejected the blob
  long long reconcile_migrations = 0;
  long long reconcile_evictions = 0;
  long long reconcile_refusals = 0;
  // Loss-episode conservation.
  long long lost_sessions = 0;
  long long recovered_restored = 0;
  long long recovered_replayed = 0;
  long long recovered_shed = 0;
  /// Per-episode recovery latency (restored + replayed; sheds excluded).
  std::vector<double> recovery_latency_s;
  std::vector<RestoreEvent> events;
};

class ClusterRouter {
 public:
  /// Everything one replica brings to the cluster. The router owns the
  /// engine (sessions capture the engine's fault model at open, so each
  /// node needs its own instance) and the optional per-node fault model;
  /// `initial` seeds the node's arbitrated expert placement.
  struct NodeSeat {
    std::unique_ptr<engines::Engine> engine;
    std::unique_ptr<sim::FaultModel> fault;  ///< nullptr = calm node
    cache::Placement initial{1, 1};
  };

  struct Request {
    long long id = 0;
    double arrival = 0.0;  ///< client arrival at the router
    /// Per-request deadline budget override; 0 uses ClusterOptions::
    /// deadline_s.
    double deadline_s = 0.0;
    data::SequenceTrace trace;
  };

  /// One request's client-observed outcome. Exactly one of served/shed
  /// holds for every enqueued request regardless of how many copies or
  /// failover attempts it consumed (conservation is DAOP_CHECKed).
  struct Outcome {
    long long id = 0;
    double arrival = 0.0;
    bool served = false;
    bool shed = false;
    eval::ShedReason shed_reason = eval::ShedReason::kNodeLost;
    int node = -1;       ///< serving node (served only)
    double start = 0.0;  ///< admission time on the serving node
    double end = 0.0;    ///< completion time (served only)
    int failovers = 0;   ///< re-dispatches this request consumed
    long long replayed_tokens = 0;  ///< tokens dead predecessors generated
    bool hedged = false;
    bool hedge_won = false;  ///< served by the hedge copy, not the primary
    /// Loss episodes this request recovered via warm restore.
    int restores = 0;
    /// How the LAST loss episode resolved: "restored" | "replayed" |
    /// "shed"; empty when the request never lost all its copies.
    std::string recovery;
    engines::RunResult result;  ///< served only; times relative to `start`
  };

  ClusterRouter(std::vector<NodeSeat> seats, const ClusterOptions& options);

  /// Enqueues one request. Requests must arrive in nondecreasing order.
  void enqueue(Request request);

  /// Drives every enqueued request to served or shed and returns the
  /// outcomes sorted by request id. Call at most once.
  std::vector<Outcome> run();

  const ClusterStats& stats() const { return stats_; }
  const std::vector<HealthEvent>& health_events() const {
    return health_.events();
  }
  int n_nodes() const { return static_cast<int>(nodes_.size()); }
  const sim::Timeline& node_timeline(int node) const {
    return nodes_[static_cast<std::size_t>(node)].timeline;
  }
  /// Leaked-pin audit across every node's arbiter (0 after a clean run;
  /// also DAOP_CHECKed internally at the end of run()).
  int total_leaked_pins() const;
  /// Node `node`'s dynamic cache, or nullptr under policy `frozen`.
  const cache::ExpertCache* node_cache(int node) const {
    return nodes_[static_cast<std::size_t>(node)].cache.get();
  }
  /// Warm-restart recovery telemetry (fully populated after run()).
  const RecoveryStats& recovery() const { return recovery_; }
  /// Node `node`'s checkpoint store, or nullptr when checkpointing is
  /// disabled.
  const recovery::CheckpointStore* node_checkpoint_store(int node) const {
    return nodes_[static_cast<std::size_t>(node)].ckpt.get();
  }

 private:
  /// One request copy waiting in a node's admission queue.
  struct QueuedCopy {
    std::size_t track = 0;
    double ready = 0.0;  ///< dispatch time + node link latency
    bool hedge = false;
  };
  /// One request copy in flight on a node.
  struct ActiveCopy {
    std::size_t track = 0;
    double start = 0.0;
    bool hedge = false;
    std::unique_ptr<engines::SequenceSession> session;
  };
  struct Node {
    int id = -1;
    std::unique_ptr<engines::Engine> engine;
    std::unique_ptr<sim::FaultModel> fault;
    sim::Timeline timeline;
    std::unique_ptr<cache::PlacementArbiter> arbiter;
    std::unique_ptr<cache::ExpertCache> cache;  ///< null: policy frozen
    std::unique_ptr<recovery::CheckpointStore> ckpt;  ///< null: disabled
    std::unique_ptr<eval::DegradationController> degrade;
    bool alive = true;
    double crash_time = std::numeric_limits<double>::infinity();
    double link_latency = 0.0;
    std::deque<QueuedCopy> pending;
    std::vector<ActiveCopy> active;
    std::vector<double> free_slots;
    long long closed_aborts = 0;
    long long closed_retries = 0;
  };
  /// Per-request routing state: how many live copies exist and what the
  /// failover path has consumed so far.
  struct Track {
    Request request;
    int failovers = 0;
    long long replayed_tokens = 0;
    int live_copies = 0;
    bool hedged = false;
    bool resolved = false;
    /// Loss-episode state: `loss_open` holds from the instant the last live
    /// copy is lost until the episode resolves (restored / replayed at the
    /// next admission, or shed). Chained losses before re-admission — e.g.
    /// a failover dispatched into a still-undetected dead node — extend the
    /// SAME episode, keeping the FIRST loss time for latency accounting.
    bool loss_open = false;
    double loss_time = 0.0;
    int restores = 0;
    const char* last_recovery = "";
  };
  /// An undispatched (or re-dispatched) request copy at the router.
  struct Launch {
    double time = 0.0;
    std::size_t track = 0;
  };

  double projected_start(const Node& n, double t) const;
  double projected_ttft(const Node& n, double t, double arrival) const;
  double affinity(const Node& n,
                  const std::vector<std::vector<double>>& counts) const;
  int pick_node(const std::vector<int>& eligible,
                const data::SequenceTrace& trace, double t);
  int least_loaded_of(const std::vector<int>& eligible, double t,
                      int exclude) const;
  eval::DegradationController::Signals node_signals(const Node& n) const;
  void dispatch_copy(std::size_t track, int node_id, double t, bool hedge);
  void lost_copy(std::size_t track, int tokens_done, double t,
                 FailoverReason reason);
  /// Attempts a warm restart for a loss-open track being admitted on `n` at
  /// `t_admit`: scans every node's store for the newest valid snapshot,
  /// reconciles `n`'s placement toward the snapshot image, and restores
  /// `session`. On failure (no snapshot / rejected blob) counts the
  /// fallback and leaves the session fresh for prefill replay.
  /// `recovery_ready` receives the reconcile migration frontier.
  bool try_warm_restore(Node& n, Track& tr,
                        engines::SequenceSession& session, double t_admit,
                        double& recovery_ready);
  /// Drops a resolved request's snapshots from every node's store.
  void drop_checkpoints(long long request_id);
  void cancel_copies(std::size_t track, double now);
  void crash_node(Node& n, double t);
  void probe_round(double t);
  void resolve_served(std::size_t track, int node_id, double start, double end,
                      bool hedge, engines::RunResult result);
  void resolve_shed(std::size_t track, eval::ShedReason reason, double t);
  void tinstant(long long request_id, const std::string& name, double t);

  // ---- Time-series hooks (all no-ops when options_.tseries is null or
  // disabled; see ClusterOptions::tseries for the channel convention). ----
  bool ts_on() const {
    return options_.tseries != nullptr && options_.tseries->enabled();
  }
  int ts_cluster_channel() const { return n_nodes(); }
  /// Advances every channel to the chosen event time and samples per-node
  /// hazard-stall totals and queue/occupancy gauges.
  void ts_tick(double t);
  void ts_served(const Track& tr, double start, double end,
                 const engines::RunResult& result);
  void ts_shed(const Track& tr, eval::ShedReason reason, double t);

  std::vector<Node> nodes_;
  ClusterOptions options_;
  HealthChecker health_;
  std::vector<Track> tracks_;
  std::vector<Launch> launches_;
  std::vector<Outcome> outcomes_;  ///< indexed by track
  std::size_t unresolved_ = 0;
  int rr_cursor_ = 0;
  bool ran_ = false;
  ClusterStats stats_;
  RecoveryStats recovery_;
  std::uint32_t tracer_track_ = 0;
};

}  // namespace daop::cluster
