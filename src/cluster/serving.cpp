#include "cluster/serving.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "cache/calibration.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "data/trace_generator.hpp"
#include "engines/run_metrics.hpp"
#include "model/op_costs.hpp"

namespace daop::cluster {

void ClusterServingOptions::validate() const {
  DAOP_CHECK_GT(base.arrival_rate_rps, 0.0);
  DAOP_CHECK_GT(base.n_requests, 0);
  DAOP_CHECK_LE(base.min_prompt, base.max_prompt);
  DAOP_CHECK_LE(base.min_gen, base.max_gen);
  DAOP_CHECK_GE(base.slo_ttft_s, 0.0);
  DAOP_CHECK_GE(base.slo_latency_s, 0.0);
  DAOP_CHECK_GE(base.priority_every, 0);
  DAOP_CHECK_GE(base.priority_deadline_s, 0.0);
  DAOP_CHECK_GE(n_nodes, 1);
  cluster.validate();
  node_hazards.validate();
  if (!node_placements.empty()) {
    DAOP_CHECK_EQ(node_placements.size(), static_cast<std::size_t>(n_nodes));
  }
}

ClusterServingResult run_cluster_serving_eval(
    eval::EngineKind kind, const model::ModelConfig& model_cfg,
    const sim::PlatformSpec& platform, const data::WorkloadSpec& workload,
    const ClusterServingOptions& options) {
  options.validate();

  const sim::CostModel cm(platform);
  const model::OpCosts costs(model_cfg, cm);

  // Identical calibration to run_serving_eval: homogeneous replicas start
  // from the very placement the single-node server would use.
  const data::TraceGenerator calib_gen(
      data::sharegpt_calibration(), model_cfg.n_layers, model_cfg.n_experts,
      model_cfg.top_k, options.base.seed ^ 0xCA11Bu);
  const auto calib_counts = cache::calibrate_activation_counts(
      calib_gen, options.base.calibration_seqs);
  const cache::Placement calibrated = cache::init_placement_calibrated(
      model_cfg.n_layers, model_cfg.n_experts, options.base.ecr, calib_counts);

  std::vector<ClusterRouter::NodeSeat> seats;
  seats.reserve(static_cast<std::size_t>(options.n_nodes));
  for (int i = 0; i < options.n_nodes; ++i) {
    ClusterRouter::NodeSeat seat;
    seat.engine = eval::make_engine(kind, costs, options.base.daop_config);
    // Per-node fault stream: independent of the node index ordering of the
    // other nodes and of the single-node stream (seed ^ 0xFA017).
    const std::uint64_t node_seed =
        options.base.seed ^ 0xC105731ULL ^
        (static_cast<std::uint64_t>(i) * 0x9E3779B97F4A7C15ULL);
    auto fault =
        std::make_unique<sim::FaultModel>(options.node_hazards, node_seed);
    if (fault->enabled()) seat.fault = std::move(fault);
    seat.initial = options.node_placements.empty()
                       ? calibrated
                       : options.node_placements[static_cast<std::size_t>(i)];
    seats.push_back(std::move(seat));
  }

  ClusterOptions router_opts = options.cluster;
  if (router_opts.tracer == nullptr) router_opts.tracer = options.base.tracer;
  if (router_opts.tseries == nullptr) {
    router_opts.tseries = options.base.tseries;
  }
  // Profiler attribution needs each node timeline's interval record;
  // recording is passive and never changes a scheduling decision.
  if (options.base.profiler != nullptr) router_opts.record_intervals = true;
  ClusterRouter router(std::move(seats), router_opts);

  // EXACT single-node request plan: same RNG seed and draw order (gap,
  // prompt, gen per request), so cluster and single-node runs on one seed
  // serve identical traffic.
  const data::TraceGenerator gen(workload, model_cfg.n_layers,
                                 model_cfg.n_experts, model_cfg.top_k,
                                 options.base.seed);
  Rng rng(options.base.seed ^ 0x5e7511e5ULL);
  double arrival = 0.0;
  for (int i = 0; i < options.base.n_requests; ++i) {
    arrival += -std::log(std::max(rng.uniform(), 1e-12)) /
               options.base.arrival_rate_rps;
    const int prompt =
        rng.uniform_int(options.base.min_prompt, options.base.max_prompt);
    const int gen_len =
        rng.uniform_int(options.base.min_gen, options.base.max_gen);
    ClusterRouter::Request req;
    req.id = i;
    req.arrival = arrival;
    if (options.base.priority_every > 0 &&
        (i + 1) % options.base.priority_every == 0) {
      req.deadline_s = options.base.priority_deadline_s;
    }
    req.trace = gen.generate(i, prompt, gen_len);
    router.enqueue(std::move(req));
  }

  const std::vector<ClusterRouter::Outcome> outcomes = router.run();
  // Satellite invariant, re-asserted at the harness boundary: no cluster
  // run may end with a pinned expert anywhere.
  DAOP_CHECK_EQ(router.total_leaked_pins(), 0);

  ClusterServingResult out;
  out.requests = options.base.n_requests;

  std::vector<double> ttft;
  std::vector<double> latency;
  std::vector<double> wait;
  std::vector<double> tpot;
  obs::HistogramData ttft_hist(obs::default_latency_buckets());
  obs::HistogramData tpot_hist(obs::default_latency_buckets());
  obs::HistogramData latency_hist(obs::default_latency_buckets());
  obs::HistogramData wait_hist(obs::default_latency_buckets());
  double makespan = 0.0;
  long long tokens = 0;

  for (const ClusterRouter::Outcome& o : outcomes) {
    eval::ServingResult::RequestLogEntry log;
    log.id = o.id;
    log.arrival = o.arrival;
    log.retries = o.failovers;
    log.restores = o.restores;
    if (!o.recovery.empty()) log.recovery = o.recovery;
    if (o.shed) {
      log.outcome =
          std::string("shed:") + eval::shed_reason_name(o.shed_reason);
      ++out.shed;
      ++out.slo_violations;
      switch (o.shed_reason) {
        case eval::ShedReason::kNodeLost:
          ++out.shed_node_lost;
          break;
        case eval::ShedReason::kDeadline:
          ++out.shed_deadline;
          break;
        case eval::ShedReason::kDegraded:
          ++out.shed_degraded;
          break;
        case eval::ShedReason::kQueueFull:
          DAOP_CHECK_MSG(false, "cluster router never sheds queue_full");
          break;
      }
    } else {
      log.outcome = "served";
      ++out.served;
      tokens += o.result.generated_tokens;
      makespan = std::max(makespan, o.end);
      // Same client-observed formulas as eval/serving.cpp's record_served:
      // everything counts from the ORIGINAL arrival, so failover backoffs
      // and re-run prefills show up in TTFT/latency.
      const double w = o.start - o.arrival;
      const double first_tok = w + o.result.prefill_s;
      const double lat = o.end - o.arrival;
      const double per_tok = o.result.generated_tokens > 0
                                 ? o.result.decode_s / o.result.generated_tokens
                                 : 0.0;
      wait.push_back(w);
      ttft.push_back(first_tok);
      latency.push_back(lat);
      tpot.push_back(per_tok);
      ttft_hist.observe(first_tok);
      tpot_hist.observe(per_tok);
      latency_hist.observe(lat);
      wait_hist.observe(w);
      if ((options.base.slo_ttft_s > 0.0 &&
           first_tok > options.base.slo_ttft_s) ||
          (options.base.slo_latency_s > 0.0 &&
           lat > options.base.slo_latency_s)) {
        ++out.slo_violations;
      }
      out.counters.add(o.result.counters);
    }
    out.request_log.push_back(std::move(log));
  }

  // Conservation (cluster-aware, satellite 2): every enqueued request is
  // either served or shed, exactly once, regardless of copies/failovers.
  DAOP_CHECK_EQ(out.served + out.shed, options.base.n_requests);
  out.cluster = router.stats();
  out.recovery = router.recovery();
  out.health_events = router.health_events();
  DAOP_CHECK_EQ(out.shed_node_lost, out.cluster.shed_node_lost);
  DAOP_CHECK_EQ(out.shed_deadline, out.cluster.shed_deadline);
  DAOP_CHECK_EQ(out.shed_degraded, out.cluster.shed_degraded);

  // Hazard stall is a per-timeline total (shared sessions report none);
  // account every node's timeline once.
  double stall = 0.0;
  for (int i = 0; i < router.n_nodes(); ++i) {
    stall += router.node_timeline(i).hazard_stall_s();
  }
  out.counters.hazard_stall_s = stall;

  // Dynamic-cache totals summed across the per-node caches.
  for (int i = 0; i < router.n_nodes(); ++i) {
    if (const cache::ExpertCache* ec = router.node_cache(i)) {
      out.cache_fills += ec->fills();
      out.cache_evictions += ec->evictions();
      out.cache_refusals += static_cast<long long>(ec->refusals().size());
      out.cache_aborts += ec->aborts();
    }
  }
  out.cache_bytes_moved =
      static_cast<double>(out.cache_fills) * model_cfg.expert_bytes();

  out.engine = std::string("cluster[") + std::to_string(options.n_nodes) +
               "x " + eval::engine_kind_name(kind) + "]";
  // Seal the final time-series window at the run makespan (the recorder the
  // router recorded into — router_opts.tseries — which defaulted from the
  // base sink above).
  if (router_opts.tseries != nullptr) router_opts.tseries->finalize(makespan);
  if (options.base.profiler != nullptr) {
    // One whole-window profile per node timeline, mirroring the
    // continuous-batching harness's shared-timeline record (per-request
    // phases are not attributable to one session).
    for (int i = 0; i < router.n_nodes(); ++i) {
      const sim::Timeline& tl = router.node_timeline(i);
      options.base.profiler->record_window(
          out.engine + " [node " + std::to_string(i) + "]", tl.intervals(),
          tl.hazard_intervals(), 0.0, std::max(makespan, tl.span()));
    }
  }
  if (!latency.empty()) {
    out.ttft_s = summarize(ttft);
    out.latency_s = summarize(latency);
    out.queue_wait_s = summarize(wait);
    out.tpot_s = summarize(tpot);
  }
  out.ttft_hist = ttft_hist;
  out.tpot_hist = tpot_hist;
  out.latency_hist = latency_hist;
  out.makespan_s = makespan;
  out.slo_violation_rate =
      static_cast<double>(out.slo_violations) / options.base.n_requests;
  if (makespan > 0.0) {
    out.throughput_tps = static_cast<double>(tokens) / makespan;
  }

  if (options.base.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options.base.metrics;
    const obs::Labels labels{{"engine", out.engine}};
    const std::vector<double> buckets = obs::default_latency_buckets();
    reg.counter("daop_serving_requests_total", "Requests by final outcome.",
                obs::Labels{{"engine", out.engine}, {"outcome", "served"}})
        .inc(static_cast<double>(out.served));
    reg.counter("daop_serving_slo_violations_total",
                "Served requests breaching an SLO, plus shed requests.",
                labels)
        .inc(static_cast<double>(out.slo_violations));
    reg.counter("daop_serving_generated_tokens_total",
                "Tokens generated across served requests.", labels)
        .inc(static_cast<double>(tokens));
    reg.histogram("daop_serving_ttft_seconds",
                  "Arrival to first output token.", buckets, labels)
        .merge(ttft_hist);
    reg.histogram("daop_serving_tpot_seconds",
                  "Mean time per output token per request.", buckets, labels)
        .merge(tpot_hist);
    reg.histogram("daop_serving_latency_seconds",
                  "Arrival to request completion.", buckets, labels)
        .merge(latency_hist);
    reg.histogram("daop_serving_queue_wait_seconds",
                  "Arrival to admission on the serving node.", buckets,
                  labels)
        .merge(wait_hist);
    reg.gauge("daop_serving_throughput_tokens_per_second",
              "Generated tokens per second of makespan.", labels)
        .set(out.throughput_tps);
    reg.gauge("daop_serving_makespan_seconds",
              "Last request completion time.", labels)
        .set(out.makespan_s);
    engines::record_counter_metrics(reg, out.counters, labels);

    const auto shed_counter = [&](const char* reason, long long n) {
      reg.counter("daop_requests_shed_total",
                  "Requests rejected or lost, by reason.",
                  obs::Labels{{"engine", out.engine}, {"reason", reason}})
          .inc(static_cast<double>(n));
    };
    shed_counter("node_lost", out.shed_node_lost);
    shed_counter("deadline", out.shed_deadline);
    shed_counter("degraded", out.shed_degraded);

    const ClusterStats& cs = out.cluster;
    reg.gauge("daop_cluster_nodes", "Configured node replicas.", labels)
        .set(static_cast<double>(router.n_nodes()));
    reg.counter("daop_cluster_dispatches_total",
                "Request copies handed to a node.", labels)
        .inc(static_cast<double>(cs.dispatches));
    reg.counter(
           "daop_cluster_failovers_total",
           "Failover re-dispatches after losing every live request copy.",
           obs::Labels{{"engine", out.engine}, {"reason", "node-crash"}})
        .inc(static_cast<double>(cs.failovers_node_crash));
    reg.counter(
           "daop_cluster_failovers_total",
           "Failover re-dispatches after losing every live request copy.",
           obs::Labels{{"engine", out.engine}, {"reason", "dead-dispatch"}})
        .inc(static_cast<double>(cs.failovers_dead_dispatch));
    reg.counter("daop_cluster_replayed_tokens_total",
                "Tokens regenerated by failover re-dispatches.", labels)
        .inc(static_cast<double>(cs.replayed_tokens));
    const auto hedge_counter = [&](const char* outcome, long long n) {
      reg.counter("daop_cluster_hedges_total",
                  "Hedged dispatches by outcome.",
                  obs::Labels{{"engine", out.engine}, {"outcome", outcome}})
          .inc(static_cast<double>(n));
    };
    hedge_counter("issued", cs.hedges);
    hedge_counter("won", cs.hedge_wins);
    hedge_counter("cancelled", cs.hedge_cancels);
    reg.counter("daop_cluster_crashes_total", "Node crashes.", labels)
        .inc(static_cast<double>(cs.crashes));
    reg.counter("daop_cluster_health_transitions_total",
                "Health-checker ejections and re-admissions.",
                obs::Labels{{"engine", out.engine}, {"direction", "eject"}})
        .inc(static_cast<double>(cs.ejections));
    reg.counter("daop_cluster_health_transitions_total",
                "Health-checker ejections and re-admissions.",
                obs::Labels{{"engine", out.engine}, {"direction", "readmit"}})
        .inc(static_cast<double>(cs.readmissions));
    reg.counter("daop_cluster_readmit_total",
                "Nodes re-admitted to service by the health checker after a "
                "recovery or brownout clearing.",
                labels)
        .inc(static_cast<double>(cs.readmissions));
    for (int i = 0; i < router.n_nodes(); ++i) {
      const obs::Labels node_labels{{"engine", out.engine},
                                    {"node", std::to_string(i)}};
      reg.gauge("daop_cluster_node_state",
                "Per-node end state: 0 crashed, 1 ejected, 2 in service.",
                node_labels)
          .set(static_cast<double>(
              cs.node_final_state[static_cast<std::size_t>(i)]));
      reg.counter("daop_cluster_node_served_total",
                  "Requests served, by node.", node_labels)
          .inc(static_cast<double>(
              cs.node_served[static_cast<std::size_t>(i)]));
    }

    // Recovery families only exist when checkpointing is on, so
    // checkpoint-off cluster metrics stay bit-identical to PR 8.
    if (options.cluster.checkpoint.enabled()) {
      const RecoveryStats& rs = out.recovery;
      reg.counter("daop_recovery_checkpoints_total",
                  "Session snapshots durably written across node stores.",
                  labels)
          .inc(static_cast<double>(rs.checkpoints_written));
      reg.counter("daop_recovery_checkpoint_bytes_total",
                  "Sealed snapshot bytes written across node stores.", labels)
          .inc(static_cast<double>(rs.checkpoint_bytes));
      const auto fault_counter = [&](const char* kind_label, long long n) {
        reg.counter("daop_recovery_checkpoint_faults_total",
                    "Checkpoint writes damaged at write time, by kind.",
                    obs::Labels{{"engine", out.engine}, {"kind", kind_label}})
            .inc(static_cast<double>(n));
      };
      fault_counter("torn", rs.torn_writes);
      fault_counter("corrupt", rs.corrupt_writes);
      reg.counter("daop_recovery_torn_rejections_total",
                  "Snapshots rejected by restore-side validation "
                  "(magic/version/length/checksum).",
                  labels)
          .inc(static_cast<double>(rs.torn_rejected));
      reg.counter("daop_recovery_restores_total",
                  "Loss episodes resolved by warm restore from a snapshot.",
                  labels)
          .inc(static_cast<double>(rs.restores));
      const auto fallback_counter = [&](const char* reason, long long n) {
        reg.counter("daop_recovery_fallbacks_total",
                    "Warm restores that fell back to prefill replay, by "
                    "reason.",
                    obs::Labels{{"engine", out.engine}, {"reason", reason}})
            .inc(static_cast<double>(n));
      };
      fallback_counter("no-checkpoint", rs.fallbacks_no_checkpoint);
      fallback_counter("invalid", rs.fallbacks_invalid);
      const auto session_counter = [&](const char* outcome, long long n) {
        reg.counter("daop_recovery_sessions_total",
                    "Loss episodes by resolution (conservation: the three "
                    "outcomes sum to lost sessions).",
                    obs::Labels{{"engine", out.engine}, {"outcome", outcome}})
            .inc(static_cast<double>(n));
      };
      session_counter("restored", rs.recovered_restored);
      session_counter("replayed", rs.recovered_replayed);
      session_counter("shed", rs.recovered_shed);
      const auto token_counter = [&](const char* path, long long n) {
        reg.counter("daop_recovery_tokens_total",
                    "Decode tokens by recovery path: restored from a "
                    "snapshot vs regenerated by replay.",
                    obs::Labels{{"engine", out.engine}, {"path", path}})
            .inc(static_cast<double>(n));
      };
      token_counter("restored", rs.restored_tokens);
      token_counter("replayed", cs.replayed_tokens);
      obs::HistogramData rec_hist(buckets);
      for (const double v : rs.recovery_latency_s) rec_hist.observe(v);
      reg.histogram("daop_recovery_latency_seconds",
                    "Last-copy loss to recovered-session readiness "
                    "(restored and replayed episodes).",
                    buckets, labels)
          .merge(rec_hist);
    }

    // Dynamic-cache families only exist when a dynamic policy is on, so
    // frozen-policy cluster metrics stay bit-identical to PR 6.
    if (options.cluster.cache.enabled()) {
      const char* policy =
          cache::cache_policy_name(options.cluster.cache.policy);
      const auto cache_counter = [&](const char* kind, long long n) {
        reg.counter("daop_cache_migrations_total",
                    "Dynamic expert-cache placement changes, by kind.",
                    obs::Labels{{"engine", out.engine},
                                {"kind", kind},
                                {"policy", policy}})
            .inc(static_cast<double>(n));
      };
      cache_counter("fill", out.cache_fills);
      cache_counter("evict", out.cache_evictions);
      const obs::Labels clabels{{"engine", out.engine}, {"policy", policy}};
      reg.counter("daop_cache_pin_refusals_total",
                  "Cache evictions refused because the victim was pinned by "
                  "another session.",
                  clabels)
          .inc(static_cast<double>(out.cache_refusals));
      reg.counter("daop_cache_migration_aborts_total",
                  "Cache swap migrations abandoned by the retry/deadline "
                  "discipline.",
                  clabels)
          .inc(static_cast<double>(out.cache_aborts));
      reg.counter("daop_cache_bytes_moved_total",
                  "Expert weight bytes moved over PCIe by cache fills.",
                  clabels)
          .inc(out.cache_bytes_moved);
    }
  }
  return out;
}

}  // namespace daop::cluster
