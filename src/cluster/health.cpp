#include "cluster/health.hpp"

#include "common/check.hpp"

namespace daop::cluster {

void HealthOptions::validate() const {
  DAOP_CHECK_GT(probe_interval_s, 0.0);
  DAOP_CHECK_GE(eject_after, 1);
  DAOP_CHECK_GE(readmit_after, 1);
  DAOP_CHECK_GE(slow_probe_s, 0.0);
}

HealthChecker::HealthChecker(const HealthOptions& options, int n_nodes)
    : options_(options),
      next_probe_(options.probe_interval_s),
      bad_streak_(static_cast<std::size_t>(n_nodes), 0),
      good_streak_(static_cast<std::size_t>(n_nodes), 0),
      ejected_(static_cast<std::size_t>(n_nodes), false) {
  options_.validate();
  DAOP_CHECK_GE(n_nodes, 1);
}

void HealthChecker::observe(double now, const std::vector<Probe>& probes) {
  DAOP_CHECK_MSG(options_.enabled, "observe() on a disabled health checker");
  DAOP_CHECK_EQ(probes.size(), ejected_.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const bool bad = !probes[i].responsive || probes[i].slow;
    if (bad) {
      ++bad_streak_[i];
      good_streak_[i] = 0;
      if (!ejected_[i] && bad_streak_[i] >= options_.eject_after) {
        ejected_[i] = true;
        ++ejections_;
        events_.push_back({now, static_cast<int>(i), true,
                           probes[i].responsive ? "slow" : "unresponsive"});
      }
    } else {
      ++good_streak_[i];
      bad_streak_[i] = 0;
      if (ejected_[i] && good_streak_[i] >= options_.readmit_after) {
        ejected_[i] = false;
        ++readmissions_;
        events_.push_back({now, static_cast<int>(i), false, "recovered"});
      }
    }
  }
  next_probe_ += options_.probe_interval_s;
}

bool HealthChecker::in_service(int node) const {
  if (!options_.enabled) return true;
  return !ejected_[static_cast<std::size_t>(node)];
}

}  // namespace daop::cluster
