#include "cluster/router.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/check.hpp"
#include "recovery/reconcile.hpp"

namespace daop::cluster {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNone = static_cast<std::size_t>(-1);
}  // namespace

const char* dispatch_policy_name(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin:
      return "round-robin";
    case DispatchPolicy::kLeastLoaded:
      return "least-loaded";
    case DispatchPolicy::kExpertAffinity:
      return "expert-affinity";
  }
  DAOP_CHECK_MSG(false, "unreachable dispatch policy");
  return "";
}

DispatchPolicy parse_dispatch_policy(const std::string& name) {
  if (name == "round-robin") return DispatchPolicy::kRoundRobin;
  if (name == "least-loaded") return DispatchPolicy::kLeastLoaded;
  if (name == "expert-affinity") return DispatchPolicy::kExpertAffinity;
  DAOP_CHECK_MSG(
      false, "unknown dispatch policy '"
                 << name
                 << "' (valid: round-robin, least-loaded, expert-affinity)");
  return DispatchPolicy::kRoundRobin;
}

void ClusterOptions::validate() const {
  DAOP_CHECK_GE(max_concurrent_per_node, 1);
  health.validate();
  DAOP_CHECK_GE(failover_budget, 0);
  DAOP_CHECK_MSG(failover_backoff_s > 0.0,
                 "failover_backoff_s must be > 0 so dead-dispatch retry "
                 "loops always advance simulated time");
  DAOP_CHECK_GE(service_estimate_s, 0.0);
  DAOP_CHECK_GE(deadline_s, 0.0);
  DAOP_CHECK_GE(hedge_ttft_threshold_s, 0.0);
  DAOP_CHECK_MSG(hedge_ttft_threshold_s == 0.0 || service_estimate_s > 0.0,
                 "hedged dispatch needs service_estimate_s to project TTFT");
  degrade.validate();
  cache.validate();
  checkpoint.validate();
  DAOP_CHECK_GE(crash_time_s, 0.0);
}

ClusterRouter::ClusterRouter(std::vector<NodeSeat> seats,
                             const ClusterOptions& options)
    : options_(options),
      health_(options.health, static_cast<int>(seats.size())) {
  options_.validate();
  DAOP_CHECK_GE(seats.size(), std::size_t{1});
  nodes_.reserve(seats.size());
  for (std::size_t i = 0; i < seats.size(); ++i) {
    NodeSeat& seat = seats[i];
    DAOP_CHECK_MSG(seat.engine != nullptr, "node seat needs an engine");
    Node n;
    n.id = static_cast<int>(i);
    n.engine = std::move(seat.engine);
    n.fault = std::move(seat.fault);
    n.arbiter =
        std::make_unique<cache::PlacementArbiter>(std::move(seat.initial));
    if (options_.cache.enabled()) {
      // Per-node cache: each replica scores demand across its own sessions.
      n.cache = std::make_unique<cache::ExpertCache>(
          options_.cache, n.arbiter->placement().n_layers(),
          n.arbiter->placement().n_experts());
    }
    if (options_.degrade.enabled) {
      n.degrade =
          std::make_unique<eval::DegradationController>(options_.degrade);
    }
    n.free_slots.assign(
        static_cast<std::size_t>(options_.max_concurrent_per_node), 0.0);
    if (n.fault != nullptr) {
      n.engine->set_fault_model(n.fault.get());
      const sim::FaultModel::NodeFaults& nf = n.fault->node_faults();
      if (nf.crash) n.crash_time = nf.crash_time_s;
      if (nf.link_degraded) n.link_latency = nf.link_latency_s;
    }
    if (options_.tracer != nullptr) n.engine->set_tracer(options_.tracer);
    nodes_.push_back(std::move(n));
  }
  if (options_.crash_node >= 0) {
    DAOP_CHECK_LT(options_.crash_node, n_nodes());
    nodes_[static_cast<std::size_t>(options_.crash_node)].crash_time =
        options_.crash_time_s;
  }
  if (options_.checkpoint.enabled()) {
    // Constructed only after nodes_ stops moving: each store captures its
    // node timeline's address. Durable writes are priced on the node's own
    // timeline and torn/corrupted by the node's own fault streams.
    for (Node& n : nodes_) {
      n.ckpt = std::make_unique<recovery::CheckpointStore>(
          options_.checkpoint, &n.timeline, n.fault.get());
    }
  }
  if (options_.record_intervals) {
    for (Node& n : nodes_) n.timeline.set_record_intervals(true);
  }
  if (ts_on()) {
    // Channel convention: one channel per node plus the trailing router
    // "cluster" channel (see ClusterOptions::tseries).
    DAOP_CHECK_GE(options_.tseries->n_channels(), n_nodes() + 1);
  }
  if (options_.tracer != nullptr) {
    tracer_track_ = options_.tracer->track("Cluster");
  }
}

void ClusterRouter::enqueue(Request request) {
  DAOP_CHECK_MSG(!ran_, "enqueue() after run()");
  DAOP_CHECK_GE(request.arrival, 0.0);
  DAOP_CHECK_GE(request.deadline_s, 0.0);
  if (!tracks_.empty()) {
    DAOP_CHECK_GE(request.arrival, tracks_.back().request.arrival);
  }
  Outcome o;
  o.id = request.id;
  o.arrival = request.arrival;
  outcomes_.push_back(std::move(o));
  launches_.push_back({request.arrival, tracks_.size()});
  Track tr;
  tr.request = std::move(request);
  tracks_.push_back(std::move(tr));
  ++unresolved_;
}

double ClusterRouter::projected_start(const Node& n, double t) const {
  if (!n.free_slots.empty()) {
    return std::max(t, *std::min_element(n.free_slots.begin(),
                                         n.free_slots.end()));
  }
  // Every slot is busy: approximate the next slot release as the earliest
  // in-flight frontier plus one service estimate. A node with neither slots
  // nor sessions (a crashed one) looks idle — the router has no oracle.
  double frontier = kInf;
  for (const ActiveCopy& a : n.active) {
    frontier = std::min(frontier, a.session->ready_time());
  }
  if (frontier == kInf) return t;
  return std::max(t, frontier) + options_.service_estimate_s;
}

double ClusterRouter::projected_ttft(const Node& n, double t,
                                     double arrival) const {
  return projected_start(n, t) +
         (static_cast<double>(n.pending.size()) + 1.0) *
             options_.service_estimate_s -
         arrival;
}

double ClusterRouter::affinity(
    const Node& n, const std::vector<std::vector<double>>& counts) const {
  const cache::Placement& p = n.arbiter->placement();
  double hit = 0.0;
  double total = 0.0;
  for (int l = 0; l < static_cast<int>(counts.size()); ++l) {
    const auto& layer = counts[static_cast<std::size_t>(l)];
    for (int e = 0; e < static_cast<int>(layer.size()); ++e) {
      const double c = layer[static_cast<std::size_t>(e)];
      if (c <= 0.0) continue;
      total += c;
      if (p.on_gpu(l, e)) hit += c;
    }
  }
  return total > 0.0 ? hit / total : 0.0;
}

int ClusterRouter::least_loaded_of(const std::vector<int>& eligible, double t,
                                   int exclude) const {
  int best = -1;
  std::size_t best_depth = 0;
  double best_start = 0.0;
  for (const int id : eligible) {
    if (id == exclude) continue;
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    const std::size_t depth = n.pending.size() + n.active.size();
    const double start = projected_start(n, t);
    if (best < 0 || depth < best_depth ||
        (depth == best_depth && start < best_start)) {
      best = id;
      best_depth = depth;
      best_start = start;
    }
  }
  return best;
}

int ClusterRouter::pick_node(const std::vector<int>& eligible,
                             const data::SequenceTrace& trace, double t) {
  DAOP_CHECK_MSG(!eligible.empty(), "pick_node with no eligible node");
  if (options_.dispatch == DispatchPolicy::kRoundRobin) {
    const int n = n_nodes();
    for (int k = 0; k < n; ++k) {
      const int id = (rr_cursor_ + k) % n;
      if (std::find(eligible.begin(), eligible.end(), id) != eligible.end()) {
        rr_cursor_ = id + 1;
        return id;
      }
    }
    return eligible.front();  // unreachable: eligible is non-empty
  }
  if (options_.dispatch == DispatchPolicy::kLeastLoaded) {
    return least_loaded_of(eligible, t, /*exclude=*/-1);
  }
  // Expert-affinity: route to the node whose GPU-resident expert set best
  // covers the sequence's prefill activation signature (MoE-Infinity-style
  // sticky routing). Ties fall back to least-loaded.
  const auto counts = trace.activation_counts(data::Phase::Prefill);
  double best = -1.0;
  std::vector<int> tied;
  for (const int id : eligible) {
    const double a = affinity(nodes_[static_cast<std::size_t>(id)], counts);
    if (a > best + 1e-12) {
      best = a;
      tied.assign(1, id);
    } else if (a >= best - 1e-12) {
      tied.push_back(id);
    }
  }
  if (tied.size() == 1) return tied.front();
  return least_loaded_of(tied, t, /*exclude=*/-1);
}

eval::DegradationController::Signals ClusterRouter::node_signals(
    const Node& n) const {
  eval::DegradationController::Signals s;
  s.hazard_stall_s = n.timeline.hazard_stall_s();
  s.migration_aborts = n.closed_aborts;
  s.migration_retries = n.closed_retries;
  for (const ActiveCopy& a : n.active) {
    s.migration_aborts += a.session->counters().migration_aborts;
    s.migration_retries += a.session->counters().migration_retries;
  }
  return s;
}

void ClusterRouter::tinstant(long long request_id, const std::string& name,
                             double t) {
  if (options_.tracer == nullptr) return;
  if (request_id >= 0) {
    const obs::RequestScope scope(options_.tracer, request_id);
    options_.tracer->instant(tracer_track_, name, t);
    return;
  }
  options_.tracer->instant(tracer_track_, name, t);
}

void ClusterRouter::ts_tick(double t) {
  obs::TimeSeriesRecorder& r = *options_.tseries;
  for (const Node& n : nodes_) {
    r.advance(n.id, t);
    r.count_total(n.id, "daop_hazard_stall_seconds_total",
                  "Simulated seconds lost to injected hazards.",
                  n.timeline.hazard_stall_s());
    r.gauge_set(n.id, "daop_queue_depth",
                "Request copies waiting in the node's admission queue.",
                static_cast<double>(n.pending.size()));
    r.gauge_set(n.id, "daop_active_sessions",
                "Sessions in flight on the node.",
                static_cast<double>(n.active.size()));
    r.gauge_set(n.id, "daop_node_in_service",
                "1 while the health checker routes to the node, else 0.",
                health_.in_service(n.id) ? 1.0 : 0.0);
  }
  r.advance(ts_cluster_channel(), t);
}

void ClusterRouter::ts_served(const Track& tr, double start, double end,
                              const engines::RunResult& result) {
  obs::TimeSeriesRecorder& r = *options_.tseries;
  const int ch = ts_cluster_channel();
  const double arrival = tr.request.arrival;
  r.advance(ch, end);
  r.count(ch, "daop_serving_requests_total", "Request resolutions.", 1.0,
          {{"outcome", "served"}});
  r.count(ch, "daop_serving_generated_tokens_total",
          "Tokens generated across served requests.",
          static_cast<double>(result.generated_tokens));
  // Same client-observed formulas as cluster/serving.cpp: everything counts
  // from the ORIGINAL arrival so failover backoffs show in the windows.
  r.observe(ch, "daop_serving_queue_wait_seconds",
            "Arrival to admission on the serving node.", start - arrival);
  r.observe(ch, "daop_serving_ttft_seconds",
            "Arrival to first output token.",
            (start - arrival) + result.prefill_s);
  r.observe(ch, "daop_serving_latency_seconds",
            "Arrival to request completion.", end - arrival);
  if (result.generated_tokens > 0) {
    r.observe(ch, "daop_serving_tpot_seconds",
              "Mean time per output token per request.",
              result.decode_s / result.generated_tokens);
  }
}

void ClusterRouter::ts_shed(const Track& tr, eval::ShedReason reason,
                            double t) {
  obs::TimeSeriesRecorder& r = *options_.tseries;
  const int ch = ts_cluster_channel();
  const char* why = eval::shed_reason_name(reason);
  r.advance(ch, t);
  r.count(ch, "daop_serving_requests_total", "Request resolutions.", 1.0,
          {{"outcome", "shed"}});
  r.count(ch, "daop_requests_shed_total",
          "Requests rejected or lost, by reason.", 1.0, {{"reason", why}});
  r.record_event(t, ch, "shed",
                 "req " + std::to_string(tr.request.id) + " (" + why + ")");
}

void ClusterRouter::dispatch_copy(std::size_t track, int node_id, double t,
                                  bool hedge) {
  Node& n = nodes_[static_cast<std::size_t>(node_id)];
  Track& tr = tracks_[track];
  ++stats_.dispatches;
  ++stats_.node_dispatched[static_cast<std::size_t>(node_id)];
  ++tr.live_copies;
  if (ts_on()) {
    options_.tseries->count(node_id, "daop_cluster_dispatches_total",
                            "Request copies handed to the node.", 1.0);
  }
  if (!n.alive) {
    // Dispatched into the void: the router only discovers the loss after
    // the failover backoff (its detection delay), then retries or sheds.
    lost_copy(track, 0, t, FailoverReason::kDeadDispatch);
    return;
  }
  n.pending.push_back({track, t + n.link_latency, hedge});
}

void ClusterRouter::lost_copy(std::size_t track, int tokens_done, double t,
                              FailoverReason reason) {
  Track& tr = tracks_[track];
  --tr.live_copies;
  DAOP_CHECK_GE(tr.live_copies, 0);
  if (tr.resolved) return;
  // A lost hedge copy whose twin is still live costs nothing extra: the
  // surviving copy carries the request.
  if (tr.live_copies > 0) return;
  if (!tr.loss_open) {
    // Every live copy is gone: open a loss episode. It resolves exactly
    // once — warm-restored or replayed at the next admission, or shed —
    // and chained losses before then extend it without reopening.
    tr.loss_open = true;
    tr.loss_time = t;
    ++recovery_.lost_sessions;
    if (ts_on()) {
      options_.tseries->count(ts_cluster_channel(),
                              "daop_cluster_loss_episodes_total",
                              "Loss episodes opened (every live request "
                              "copy lost).",
                              1.0);
      options_.tseries->record_event(
          t, ts_cluster_channel(), "loss",
          "req " + std::to_string(tr.request.id) + " lost every copy");
    }
  }
  if (tr.failovers < options_.failover_budget) {
    ++tr.failovers;
    // Every token a dead predecessor generated will be regenerated by the
    // re-dispatched session (prefill re-runs from the recorded trace).
    tr.replayed_tokens += tokens_done;
    stats_.replayed_tokens += tokens_done;
    if (reason == FailoverReason::kNodeCrash) {
      ++stats_.failovers_node_crash;
    } else {
      ++stats_.failovers_dead_dispatch;
    }
    if (ts_on()) {
      options_.tseries->count(
          ts_cluster_channel(), "daop_cluster_failovers_total",
          "Failover re-dispatches after losing every live request copy.",
          1.0,
          {{"reason", reason == FailoverReason::kNodeCrash
                          ? "node-crash"
                          : "dead-dispatch"}});
    }
    launches_.push_back({t + options_.failover_backoff_s, track});
    tinstant(tr.request.id,
             "failover req " + std::to_string(tr.request.id) + " (attempt " +
                 std::to_string(tr.failovers) + ")",
             t);
    return;
  }
  resolve_shed(track, eval::ShedReason::kNodeLost, t);
}

void ClusterRouter::cancel_copies(std::size_t track, double now) {
  Track& tr = tracks_[track];
  for (Node& n : nodes_) {
    for (auto it = n.pending.begin(); it != n.pending.end();) {
      if (it->track == track) {
        --tr.live_copies;
        ++stats_.hedge_cancels;
        it = n.pending.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = n.active.begin(); it != n.active.end();) {
      if (it->track != track) {
        ++it;
        continue;
      }
      // The losing copy's already-scheduled work holds its slot until the
      // session frontier passes; abandon() releases its arbiter pins.
      const double slot_free = std::max(now, it->session->ready_time());
      it->session->abandon(now);
      n.free_slots.push_back(slot_free);
      --tr.live_copies;
      ++stats_.hedge_cancels;
      it = n.active.erase(it);
    }
  }
  DAOP_CHECK_EQ(tr.live_copies, 0);
}

void ClusterRouter::crash_node(Node& n, double t) {
  n.alive = false;
  n.crash_time = kInf;
  ++stats_.crashes;
  if (ts_on()) {
    options_.tseries->count(ts_cluster_channel(),
                            "daop_cluster_crashes_total", "Node crashes.",
                            1.0);
    options_.tseries->record_event(t, n.id, "crash",
                                   "node " + std::to_string(n.id) +
                                       " crashed");
  }
  if (n.ckpt != nullptr) {
    // Crash consistency: a durable write still in PCIe flight dies with
    // the node (counted as torn). Completed generations survive — the
    // store models durable storage a surviving peer can read from.
    n.ckpt->discard_in_flight(t);
  }
  tinstant(-1, "node " + std::to_string(n.id) + " crashed", t);
  std::vector<ActiveCopy> lost_active;
  lost_active.swap(n.active);
  std::deque<QueuedCopy> lost_queued;
  lost_queued.swap(n.pending);
  n.free_slots.clear();
  for (ActiveCopy& a : lost_active) {
    const int tokens = a.session->tokens_generated();
    // Teardown WITHOUT close(): the session's RAII pin guard releases its
    // arbiter pins (satellite fix; asserted right below).
    a.session.reset();
    lost_copy(a.track, tokens, t, FailoverReason::kNodeCrash);
  }
  DAOP_CHECK_EQ(n.arbiter->total_pin_count(), 0);
  for (const QueuedCopy& q : lost_queued) {
    lost_copy(q.track, 0, t, FailoverReason::kNodeCrash);
  }
}

void ClusterRouter::probe_round(double t) {
  std::vector<HealthChecker::Probe> probes(nodes_.size());
  for (const Node& n : nodes_) {
    HealthChecker::Probe& p = probes[static_cast<std::size_t>(n.id)];
    p.responsive = n.alive;
    if (!n.alive) continue;
    bool slow = n.fault != nullptr && n.fault->in_brownout(t);
    if (options_.health.slow_probe_s > 0.0) {
      const double wait =
          projected_start(n, t) +
          static_cast<double>(n.pending.size()) * options_.service_estimate_s -
          t;
      if (wait > options_.health.slow_probe_s) slow = true;
    }
    p.slow = slow;
  }
  const std::size_t before = health_.events().size();
  health_.observe(t, probes);
  for (std::size_t i = before; i < health_.events().size(); ++i) {
    const HealthEvent& e = health_.events()[i];
    tinstant(-1,
             std::string(e.ejected ? "eject node " : "readmit node ") +
                 std::to_string(e.node) + " (" + e.reason + ")",
             e.time);
    if (ts_on()) {
      const char* dir = e.ejected ? "eject" : "readmit";
      options_.tseries->count(ts_cluster_channel(),
                              "daop_cluster_health_transitions_total",
                              "Health-checker ejections and re-admissions.",
                              1.0, {{"direction", dir}});
      options_.tseries->record_event(
          e.time, e.node, dir,
          "node " + std::to_string(e.node) + " (" + e.reason + ")");
    }
  }
}

void ClusterRouter::resolve_served(std::size_t track, int node_id,
                                   double start, double end, bool hedge,
                                   engines::RunResult result) {
  Track& tr = tracks_[track];
  DAOP_CHECK_MSG(!tr.resolved, "request resolved twice");
  tr.resolved = true;
  --unresolved_;
  if (ts_on()) ts_served(tr, start, end, result);
  Outcome& o = outcomes_[track];
  o.served = true;
  o.node = node_id;
  o.start = start;
  o.end = end;
  o.failovers = tr.failovers;
  o.replayed_tokens = tr.replayed_tokens;
  o.hedged = tr.hedged;
  o.hedge_won = hedge;
  o.restores = tr.restores;
  o.recovery = tr.last_recovery;
  o.result = std::move(result);
  ++stats_.node_served[static_cast<std::size_t>(node_id)];
  if (hedge) ++stats_.hedge_wins;
  DAOP_CHECK_MSG(!tr.loss_open,
                 "a served request cannot have an unresolved loss episode");
  drop_checkpoints(tr.request.id);
}

void ClusterRouter::resolve_shed(std::size_t track, eval::ShedReason reason,
                                 double t) {
  Track& tr = tracks_[track];
  DAOP_CHECK_MSG(!tr.resolved, "request resolved twice");
  DAOP_CHECK_EQ(tr.live_copies, 0);
  tr.resolved = true;
  --unresolved_;
  if (ts_on()) ts_shed(tr, reason, t);
  if (tr.loss_open) {
    // The loss episode ends here: no copy will ever be re-admitted.
    tr.loss_open = false;
    tr.last_recovery = "shed";
    ++recovery_.recovered_shed;
  }
  Outcome& o = outcomes_[track];
  o.shed = true;
  o.shed_reason = reason;
  o.failovers = tr.failovers;
  o.replayed_tokens = tr.replayed_tokens;
  o.hedged = tr.hedged;
  o.restores = tr.restores;
  o.recovery = tr.last_recovery;
  drop_checkpoints(tr.request.id);
  switch (reason) {
    case eval::ShedReason::kNodeLost:
      ++stats_.shed_node_lost;
      break;
    case eval::ShedReason::kDeadline:
      ++stats_.shed_deadline;
      break;
    case eval::ShedReason::kDegraded:
      ++stats_.shed_degraded;
      break;
    case eval::ShedReason::kQueueFull:
      DAOP_CHECK_MSG(false, "cluster router never sheds for queue overflow");
      break;
  }
  tinstant(tr.request.id,
           std::string("shed (") + eval::shed_reason_name(reason) + ")", t);
}

void ClusterRouter::drop_checkpoints(long long request_id) {
  if (!options_.checkpoint.enabled()) return;
  for (Node& m : nodes_) m.ckpt->drop(request_id);
}

bool ClusterRouter::try_warm_restore(Node& n, Track& tr,
                                     engines::SequenceSession& session,
                                     double t_admit, double& recovery_ready) {
  // Checkpoints model durable storage: every node's store is scanned,
  // including the crashed node's (its completed generations survived; its
  // in-flight writes died with it). Newest step wins; the scan order makes
  // ties deterministic (lowest node id).
  const recovery::CheckpointRecord* best = nullptr;
  for (Node& m : nodes_) {
    const recovery::CheckpointRecord* rec =
        m.ckpt->latest_valid(tr.request.id, t_admit);
    if (rec != nullptr && (best == nullptr || rec->step > best->step)) {
      best = rec;
    }
  }
  if (best == nullptr) {
    ++recovery_.fallbacks_no_checkpoint;
    return false;
  }
  // Rebuild the snapshot's expert residency on the surviving node BEFORE
  // the session re-pins its working set. Experts pinned by concurrent
  // sessions stay put (refusals); the restored session then degrades to
  // CPU execution for them exactly as for any refused migration.
  const std::optional<engines::SessionSnapshotInfo> info =
      engines::SequenceSession::peek(best->bytes);
  if (info.has_value() && info->has_placement) {
    const recovery::ReconcileResult rr = recovery::reconcile_placement(
        info->placement, *n.arbiter, n.timeline, t_admit,
        n.engine->costs().expert_migration(), tr.request.id);
    recovery_ready = std::max(recovery_ready, rr.ready);
    recovery_.reconcile_migrations += rr.migrated;
    recovery_.reconcile_evictions += rr.evicted;
    recovery_.reconcile_refusals += rr.refused;
  }
  engines::RestoreOptions ropts;
  ropts.resume_floor = t_admit;
  if (!session.restore(best->bytes, ropts)) {
    ++recovery_.fallbacks_invalid;
    return false;
  }
  ++recovery_.restores;
  recovery_.restored_tokens += best->step;
  // Tokens up to the snapshot step are NOT regenerated: credit them back
  // against the replay accounting the losses already charged.
  const long long credit = std::min(best->step, tr.replayed_tokens);
  tr.replayed_tokens -= credit;
  stats_.replayed_tokens -= credit;
  return true;
}

int ClusterRouter::total_leaked_pins() const {
  int pins = 0;
  for (const Node& n : nodes_) pins += n.arbiter->total_pin_count();
  return pins;
}

std::vector<ClusterRouter::Outcome> ClusterRouter::run() {
  DAOP_CHECK_MSG(!ran_, "run() may be called at most once");
  ran_ = true;
  stats_.node_dispatched.assign(nodes_.size(), 0);
  stats_.node_served.assign(nodes_.size(), 0);
  const std::size_t total = tracks_.size();

  enum class Ev { kNone, kCrash, kProbe, kLaunch, kNode };
  long long iters = 0;
  const long long max_iters =
      1'000'000 + 10'000 * static_cast<long long>(total);

  while (unresolved_ > 0) {
    DAOP_CHECK_MSG(++iters <= max_iters,
                   "cluster router failed to make progress");
    // ---- Candidate events. Fixed priority on time ties (strict < below):
    // crash < probe < launch < node admit/step, then lowest node id. ----
    double best_t = kInf;
    Ev ev = Ev::kNone;

    int crash_id = -1;
    for (const Node& n : nodes_) {
      if (n.alive && n.crash_time < best_t) {
        best_t = n.crash_time;
        ev = Ev::kCrash;
        crash_id = n.id;
      }
    }

    const double t_probe = health_.next_probe_time();
    if (t_probe < best_t) {
      best_t = t_probe;
      ev = Ev::kProbe;
    }

    std::size_t launch_i = kNone;
    for (std::size_t i = 0; i < launches_.size(); ++i) {
      if (launches_[i].time < best_t ||
          (ev == Ev::kLaunch && launches_[i].time == best_t &&
           launches_[i].track < launches_[launch_i].track)) {
        best_t = launches_[i].time;
        ev = Ev::kLaunch;
        launch_i = i;
      }
    }

    int node_id = -1;
    bool node_admit = false;
    std::size_t step_i = kNone;
    std::size_t slot_i = kNone;
    for (const Node& n : nodes_) {
      if (!n.alive) continue;
      int mc_eff = options_.max_concurrent_per_node;
      if (n.degrade != nullptr && n.degrade->cap_concurrency()) {
        mc_eff = std::max(1, mc_eff / 2);
      }
      double t_admit = kInf;
      std::size_t slot = kNone;
      if (!n.pending.empty() && !n.free_slots.empty() &&
          static_cast<int>(n.active.size()) < mc_eff) {
        slot = static_cast<std::size_t>(
            std::min_element(n.free_slots.begin(), n.free_slots.end()) -
            n.free_slots.begin());
        t_admit = std::max(n.pending.front().ready, n.free_slots[slot]);
      }
      double t_step = kInf;
      std::size_t si = kNone;
      for (std::size_t i = 0; i < n.active.size(); ++i) {
        const double r = n.active[i].session->ready_time();
        if (r < t_step) {
          t_step = r;
          si = i;
        }
      }
      // Within a node, admission wins ties against stepping — the same
      // preference as the single-node scheduler loops.
      const bool admit = t_admit <= t_step;
      const double t_node = admit ? t_admit : t_step;
      if (t_node < best_t) {
        best_t = t_node;
        ev = Ev::kNode;
        node_id = n.id;
        node_admit = admit;
        step_i = si;
        slot_i = slot;
      }
    }

    DAOP_CHECK_MSG(ev != Ev::kNone,
                   "unresolved requests but no schedulable event");

    // Passive telemetry sampling at the chosen event time, BEFORE the event
    // executes (events recorded while handling it land in the window
    // containing best_t).
    if (ts_on()) ts_tick(best_t);

    if (ev == Ev::kCrash) {
      crash_node(nodes_[static_cast<std::size_t>(crash_id)], best_t);
      continue;
    }

    if (ev == Ev::kProbe) {
      probe_round(best_t);
      continue;
    }

    if (ev == Ev::kLaunch) {
      const Launch l = launches_[launch_i];
      launches_.erase(launches_.begin() +
                      static_cast<std::ptrdiff_t>(launch_i));
      Track& tr = tracks_[l.track];
      if (tr.resolved) continue;
      // Dispatch eligibility is the health checker's verdict, never the
      // router peeking at `alive`: without health checking every node —
      // including a dead one — stays a target.
      std::vector<int> eligible;
      bool any_alive = false;
      for (const Node& n : nodes_) {
        if (n.alive) any_alive = true;
        if (health_.in_service(n.id)) eligible.push_back(n.id);
      }
      if (eligible.empty()) {
        if (!any_alive) {
          // No replica left to fail over to.
          resolve_shed(l.track, eval::ShedReason::kNodeLost, l.time);
          continue;
        }
        // Every node is ejected: hold the dispatch until the next probe
        // round can re-admit one.
        launches_.push_back({health_.next_probe_time(), l.track});
        continue;
      }
      const int primary = pick_node(eligible, tr.request.trace, l.time);
      // Hedging decision against the pre-dispatch queue state; one hedge
      // per request, never for failover re-dispatches of a hedged request.
      int mate = -1;
      if (options_.hedge_ttft_threshold_s > 0.0 && !tr.hedged &&
          eligible.size() > 1) {
        const Node& p = nodes_[static_cast<std::size_t>(primary)];
        const double proj =
            projected_ttft(p, l.time + p.link_latency, tr.request.arrival);
        if (proj > options_.hedge_ttft_threshold_s) {
          mate = least_loaded_of(eligible, l.time, primary);
        }
      }
      dispatch_copy(l.track, primary, l.time, /*hedge=*/false);
      if (mate >= 0 && !tr.resolved && tr.live_copies > 0) {
        tr.hedged = true;
        ++stats_.hedges;
        tinstant(tr.request.id,
                 "hedge req " + std::to_string(tr.request.id) + " -> node " +
                     std::to_string(mate),
                 l.time);
        dispatch_copy(l.track, mate, l.time, /*hedge=*/true);
      }
      continue;
    }

    // ---- Node event ----
    Node& n = nodes_[static_cast<std::size_t>(node_id)];
    if (node_admit) {
      const double t_admit = best_t;
      const QueuedCopy q = n.pending.front();
      Track& tr = tracks_[q.track];
      if (tr.resolved) {  // orphaned copy (defensive; twins cancel eagerly)
        n.pending.pop_front();
        continue;
      }
      if (n.degrade != nullptr) n.degrade->observe(t_admit, node_signals(n));
      // Deadline shedding against the ORIGINAL arrival: a copy that cannot
      // make its first token in time frees the slot for one that can.
      const double budget = tr.request.deadline_s > 0.0
                                ? tr.request.deadline_s
                                : options_.deadline_s;
      if (budget > 0.0) {
        const double dl_full = tr.request.arrival + budget;
        const double dl_eff =
            (n.degrade != nullptr && n.degrade->shed_aggressively())
                ? tr.request.arrival + 0.5 * budget
                : dl_full;
        const double projected = t_admit + options_.service_estimate_s;
        if (projected > dl_eff) {
          n.pending.pop_front();
          --tr.live_copies;
          if (tr.live_copies == 0) {
            resolve_shed(q.track,
                         projected > dl_full ? eval::ShedReason::kDeadline
                                             : eval::ShedReason::kDegraded,
                         t_admit);
          }
          continue;
        }
      }
      engines::SessionEnv env;
      env.timeline = &n.timeline;
      env.start_time = t_admit;
      env.request_id = tr.request.id;
      env.arbiter = n.arbiter.get();
      env.cache = n.cache.get();
      env.shared = true;
      if (n.degrade != nullptr) {
        env.degrade_no_speculation = n.degrade->no_speculation();
        env.degrade_no_migrations = n.degrade->no_migrations();
      }
      env.failover_replay_tokens = static_cast<int>(tr.replayed_tokens);
      ActiveCopy a;
      a.track = q.track;
      a.start = t_admit;
      a.hedge = q.hedge;
      a.session = n.engine->open_session(tr.request.trace,
                                         n.arbiter->placement(), env);
      bool restored = false;
      double recovery_ready = t_admit;
      if (tr.loss_open && options_.checkpoint.enabled()) {
        restored = try_warm_restore(n, tr, *a.session, t_admit,
                                    recovery_ready);
      }
      if (!restored) a.session->prefill();
      if (tr.loss_open) {
        // The loss episode resolves at this re-admission: warm-restored
        // from the snapshot, or replayed from the recorded trace.
        tr.loss_open = false;
        tr.last_recovery = restored ? "restored" : "replayed";
        if (restored) {
          ++tr.restores;
          ++recovery_.recovered_restored;
        } else {
          ++recovery_.recovered_replayed;
        }
        RestoreEvent ev;
        ev.request_id = tr.request.id;
        ev.node = n.id;
        ev.restored = restored;
        ev.step = restored ? a.session->tokens_generated() : 0;
        ev.loss_time = tr.loss_time;
        ev.admit_time = t_admit;
        ev.latency_s = std::max(a.session->ready_time(), recovery_ready) -
                       tr.loss_time;
        recovery_.recovery_latency_s.push_back(ev.latency_s);
        recovery_.events.push_back(ev);
        if (ts_on()) {
          const char* path = restored ? "restored" : "replayed";
          options_.tseries->count(
              ts_cluster_channel(), "daop_cluster_recoveries_total",
              "Loss episodes resolved at re-admission, by recovery path.",
              1.0, {{"path", path}});
          options_.tseries->observe(ts_cluster_channel(),
                                    "daop_recovery_latency_seconds",
                                    "Last-copy loss to recovered-session "
                                    "readiness.",
                                    ev.latency_s);
          options_.tseries->record_event(
              t_admit, n.id, restored ? "restore" : "replay",
              "req " + std::to_string(tr.request.id) + " on node " +
                  std::to_string(n.id));
        }
        tinstant(tr.request.id,
                 std::string(restored ? "warm restore req " : "replay req ") +
                     std::to_string(tr.request.id) + " on node " +
                     std::to_string(n.id) +
                     (restored ? " (token " +
                                     std::to_string(
                                         a.session->tokens_generated()) +
                                     ")"
                               : ""),
                 t_admit);
      }
      n.free_slots.erase(n.free_slots.begin() +
                         static_cast<std::ptrdiff_t>(slot_i));
      n.active.push_back(std::move(a));
      n.pending.pop_front();
      continue;
    }

    ActiveCopy& a = n.active[step_i];
    if (a.session->decode_step()) {
      if (n.ckpt != nullptr) {
        const long long rid = tracks_[a.track].request.id;
        const long long step = a.session->tokens_generated();
        const double now = a.session->ready_time();
        if (n.ckpt->due(rid, step, now)) {
          std::vector<std::uint8_t> snap = a.session->checkpoint();
          if (!snap.empty()) {
            n.ckpt->write(rid, step, now, std::move(snap));
            if (ts_on()) {
              options_.tseries->count(
                  n.id, "daop_recovery_checkpoints_total",
                  "Session snapshots durably written on the node.", 1.0);
            }
          }
        }
      }
      continue;
    }
    // For warm-restored sessions the session clock starts at the ORIGINAL
    // admission (shifted), not this copy's re-admission, so completion time
    // must come from the session's own start. For normal sessions
    // start_time() == a.start exactly (bit-identical to the historical
    // `a.start + r.total_s`).
    const double session_start = a.session->start_time();
    engines::RunResult r = a.session->close();
    n.closed_aborts += r.counters.migration_aborts;
    n.closed_retries += r.counters.migration_retries;
    const double end = session_start + r.total_s;
    const double start = a.start;
    const bool hedge = a.hedge;
    const std::size_t track = a.track;
    n.free_slots.push_back(end);
    n.active.erase(n.active.begin() + static_cast<std::ptrdiff_t>(step_i));
    if (n.degrade != nullptr) n.degrade->observe(end, node_signals(n));
    Track& tr = tracks_[track];
    --tr.live_copies;
    resolve_served(track, n.id, start, end, hedge, std::move(r));
    // First completion wins: cancel the losing twin everywhere else.
    if (tr.live_copies > 0) cancel_copies(track, end);
  }

  // ---- Final telemetry + conservation (cluster-aware: one outcome per
  // request no matter how many copies or failover attempts it consumed). ----
  if (options_.checkpoint.enabled()) {
    for (const Node& n : nodes_) {
      const recovery::CheckpointStoreStats& cs = n.ckpt->stats();
      recovery_.checkpoints_written += cs.writes;
      recovery_.checkpoint_bytes += cs.bytes_written;
      recovery_.torn_writes += cs.torn_writes;
      recovery_.corrupt_writes += cs.corrupt_writes;
      recovery_.torn_rejected += cs.torn_rejected;
    }
  }
  // Recovery conservation: every loss episode resolved exactly one way.
  DAOP_CHECK_EQ(recovery_.lost_sessions,
                recovery_.recovered_restored + recovery_.recovered_replayed +
                    recovery_.recovered_shed);
  DAOP_CHECK_EQ(recovery_.restores, recovery_.recovered_restored);
  for (const Track& tr : tracks_) {
    DAOP_CHECK_MSG(!tr.loss_open, "run ended with an open loss episode");
  }
  stats_.ejections = health_.ejections();
  stats_.readmissions = health_.readmissions();
  stats_.node_final_state.assign(nodes_.size(), 2);
  for (const Node& n : nodes_) {
    const std::size_t i = static_cast<std::size_t>(n.id);
    if (!n.alive) {
      stats_.node_final_state[i] = 0;
    } else if (!health_.in_service(n.id)) {
      stats_.node_final_state[i] = 1;
    }
  }

  DAOP_CHECK_EQ(unresolved_, std::size_t{0});
  DAOP_CHECK_EQ(outcomes_.size(), total);
  std::size_t served = 0;
  std::size_t shed = 0;
  for (const Outcome& o : outcomes_) {
    DAOP_CHECK_MSG(o.served != o.shed,
                   "request must resolve as exactly one of served/shed");
    if (o.served) {
      ++served;
    } else {
      ++shed;
    }
  }
  DAOP_CHECK_EQ(served + shed, total);
  DAOP_CHECK_EQ(std::accumulate(stats_.node_served.begin(),
                                stats_.node_served.end(), 0LL),
                static_cast<long long>(served));
  DAOP_CHECK_EQ(
      stats_.shed_node_lost + stats_.shed_deadline + stats_.shed_degraded,
      static_cast<long long>(shed));
  for (const Node& n : nodes_) {
    DAOP_CHECK_MSG(n.pending.empty() && n.active.empty(),
                   "node " << n.id << " finished with undrained work");
    // Satellite invariant: no session may leak pins — not through crash
    // teardown, hedging cancellation, or normal close.
    DAOP_CHECK_EQ(n.arbiter->total_pin_count(), 0);
  }

  std::sort(outcomes_.begin(), outcomes_.end(),
            [](const Outcome& x, const Outcome& y) { return x.id < y.id; });
  return std::move(outcomes_);
}

}  // namespace daop::cluster
