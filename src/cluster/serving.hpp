// Cluster serving harness: the run_serving_eval experience for an N-node
// fault-tolerant cluster (cluster/router.hpp).
//
// Builds one engine + fault model + arbitrated placement per node, replays
// the EXACT single-node request plan (same seed, same RNG draw order:
// arrival gap, prompt length, gen length per request), routes it through a
// ClusterRouter, and reports client-observed serving metrics with the same
// formulas as eval/serving.cpp — TTFT, latency and queue wait all measured
// from the ORIGINAL arrival, so failover delays and hedging savings show up
// in the distributions and single-node vs cluster runs are directly
// comparable on one seed.
//
// Deterministic in (options, seed). Node i's fault model draws from
// seed ^ 0xC105731 ^ (i * golden-ratio), so per-node fault outcomes are
// independent of each other and of the single-node fault stream.
#pragma once

#include <string>
#include <vector>

#include "cache/placement.hpp"
#include "cluster/router.hpp"
#include "common/stats.hpp"
#include "eval/serving.hpp"
#include "eval/speed.hpp"
#include "obs/metrics.hpp"

namespace daop::cluster {

struct ClusterServingOptions {
  /// Workload plan (arrival rate, request count, prompt/gen ranges, seed,
  /// ecr, calibration), SLO thresholds and observability sinks. The plan
  /// fields are interpreted exactly as run_serving_eval does; `base.
  /// max_concurrent`, `base.overload` and the client retry knobs are NOT
  /// used here (per-node concurrency comes from `cluster.
  /// max_concurrent_per_node`, shedding from the router's failover and
  /// deadline planes).
  eval::ServingOptions base;
  int n_nodes = 4;
  /// Router configuration (dispatch policy, health checking, failover
  /// budget, hedging, degradation, explicit crash injection).
  ClusterOptions cluster;
  /// Hazard scenario drawn independently per node (node-crash /
  /// node-brownout / link-degrade presets live here; see
  /// sim::make_hazard_scenario's "cluster" kind). Default: calm nodes.
  sim::HazardScenario node_hazards;
  /// Optional per-node initial placements (size n_nodes). Empty: every node
  /// starts from the same calibrated placement run_serving_eval would use —
  /// the homogeneous-replica default. Heterogeneous placements are what
  /// makes `expert-affinity` dispatch distinguish nodes.
  std::vector<cache::Placement> node_placements;

  void validate() const;
};

struct ClusterServingResult {
  std::string engine;
  int requests = 0;
  int served = 0;
  int shed = 0;  ///< conservation: served + shed == requests (DAOP_CHECKed)
  Summary ttft_s;        ///< arrival -> first output token (served only)
  Summary latency_s;     ///< arrival -> request complete (served only)
  Summary queue_wait_s;  ///< arrival -> admission on the serving node
  Summary tpot_s;
  obs::HistogramData ttft_hist;
  obs::HistogramData tpot_hist;
  obs::HistogramData latency_hist;
  double throughput_tps = 0.0;  ///< generated tokens / makespan
  double makespan_s = 0.0;
  int slo_violations = 0;  ///< SLO-breaching served requests + all shed
  double slo_violation_rate = 0.0;
  long long shed_node_lost = 0;
  long long shed_deadline = 0;
  long long shed_degraded = 0;
  /// Engine counters summed over served requests; hazard_stall_s is the
  /// total across every node timeline (accounted once, like the
  /// continuous-batching harness).
  engines::EngineCounters counters;
  /// Router-level telemetry: failovers, replayed tokens, hedges, crashes,
  /// ejections, per-node dispatch/serve counts and final states.
  ClusterStats cluster;
  /// Warm-restart recovery telemetry (all zero with checkpointing off,
  /// except the loss-episode conservation counts, which are always kept).
  RecoveryStats recovery;
  std::vector<HealthEvent> health_events;
  // ---- Dynamic-cache telemetry summed across node caches (all zero under
  // policy `frozen`; see ClusterOptions::cache) ----
  long long cache_fills = 0;
  long long cache_evictions = 0;
  long long cache_refusals = 0;
  long long cache_aborts = 0;
  double cache_bytes_moved = 0.0;
  /// Per-request outcome log in id order ("served" or "shed:<reason>";
  /// `retries` carries the failover re-dispatch count).
  std::vector<eval::ServingResult::RequestLogEntry> request_log;
};

/// Simulates `options.base.n_requests` requests through an N-node cluster.
/// Deterministic in the options' seed.
ClusterServingResult run_cluster_serving_eval(
    eval::EngineKind kind, const model::ModelConfig& model_cfg,
    const sim::PlatformSpec& platform, const data::WorkloadSpec& workload,
    const ClusterServingOptions& options);

}  // namespace daop::cluster
