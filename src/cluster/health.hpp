// Health checking for the cluster router (src/cluster/router.hpp).
//
// The router cannot see a replica's internal state — a crashed node simply
// stops answering, and a browned-out one answers slowly. The HealthChecker
// models the operational answer: probe every node on a fixed simulated-time
// cadence, eject a node from the routing set after K consecutive
// missed/slow probes, and re-admit it after M consecutive good ones. It is
// the only component allowed to remove a node from dispatch eligibility;
// with health checking disabled the router keeps dispatching to dead nodes
// and pays for it through the failover path (exactly the naive baseline the
// chaos acceptance bench beats).
//
// Deterministic and single-threaded like the rest of the simulation: probe
// times are a fixed schedule and every transition is a pure function of the
// observed probe sequence.
#pragma once

#include <limits>
#include <vector>

namespace daop::cluster {

struct HealthOptions {
  /// Off by default: every node stays dispatch-eligible forever and the
  /// router's behaviour is independent of the checker.
  bool enabled = false;
  /// Simulated-time cadence of probe rounds (first round at one interval).
  double probe_interval_s = 0.25;
  /// Consecutive missed/slow probes before a node is ejected.
  int eject_after = 3;
  /// Consecutive good probes before an ejected node is re-admitted.
  int readmit_after = 2;
  /// A responsive probe counts as "slow" when the node is inside a brownout
  /// window or its projected first-token wait exceeds this; 0 disables
  /// slowness detection (only missed probes count against a node).
  double slow_probe_s = 0.0;

  void validate() const;
};

/// One ejection or re-admission, in probe-time order.
struct HealthEvent {
  double time = 0.0;
  int node = -1;
  bool ejected = false;  ///< true = ejected, false = re-admitted
  const char* reason = "";
};

class HealthChecker {
 public:
  HealthChecker(const HealthOptions& options, int n_nodes);

  bool enabled() const { return options_.enabled; }

  /// Time of the next probe round (+inf when disabled). Advances by one
  /// interval per observe() call.
  double next_probe_time() const {
    return options_.enabled ? next_probe_
                            : std::numeric_limits<double>::infinity();
  }

  /// What one probe of one node came back as.
  struct Probe {
    bool responsive = true;  ///< false: the node is down (probe missed)
    bool slow = false;       ///< responded past the slowness threshold
  };

  /// Feeds one probe round (one entry per node) taken at next_probe_time().
  void observe(double now, const std::vector<Probe>& probes);

  /// Dispatch eligibility: true unless the checker has ejected the node.
  /// Always true when disabled — the naive router trusts every replica.
  bool in_service(int node) const;

  const std::vector<HealthEvent>& events() const { return events_; }
  long long ejections() const { return ejections_; }
  long long readmissions() const { return readmissions_; }

 private:
  HealthOptions options_;
  double next_probe_ = 0.0;
  std::vector<int> bad_streak_;
  std::vector<int> good_streak_;
  std::vector<bool> ejected_;
  std::vector<HealthEvent> events_;
  long long ejections_ = 0;
  long long readmissions_ = 0;
};

}  // namespace daop::cluster
