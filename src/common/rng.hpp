// Deterministic random number generation for all DAOP experiments.
//
// Every source of randomness in the library flows through daop::Rng, seeded
// explicitly, so that every experiment in the paper reproduction is
// bit-reproducible across runs and platforms. The generator is xoshiro256**
// seeded via SplitMix64 (both public-domain algorithms).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace daop {

/// 64-bit deterministic PRNG (xoshiro256**) with distribution helpers.
///
/// Rng is a value type: copying it forks the stream at its current state.
/// Use fork(stream_id) to derive statistically independent child streams,
/// e.g. one per sequence or per layer, without coupling consumption order.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with equal seeds produce
  /// identical streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Gamma(alpha, 1) via Marsaglia-Tsang; alpha > 0.
  double gamma(double alpha);

  /// Dirichlet sample with symmetric concentration `alpha` over `k` bins.
  std::vector<double> dirichlet_symmetric(double alpha, int k);

  /// Dirichlet sample with per-bin concentrations.
  std::vector<double> dirichlet(std::span<const double> alpha);

  /// Samples an index proportionally to `weights` (need not be normalized,
  /// must be non-negative with positive sum).
  int categorical(std::span<const double> weights);

  /// Derives an independent child stream; deterministic in (parent seed,
  /// stream id) and unaffected by how much the parent has been consumed.
  Rng fork(std::uint64_t stream_id) const;

  /// Complete generator state, for crash-consistent checkpointing: restoring
  /// a saved State resumes the stream at exactly the draw it was suspended
  /// on (including the Box-Muller cached variate).
  struct State {
    std::array<std::uint64_t, 4> s{};
    std::uint64_t seed = 0;
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };
  State save_state() const {
    return State{state_, seed_, has_cached_normal_, cached_normal_};
  }
  void load_state(const State& st) {
    state_ = st.s;
    seed_ = st.seed;
    has_cached_normal_ = st.has_cached_normal;
    cached_normal_ = st.cached_normal;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
      const int j = uniform_int(0, i);
      std::swap(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(j)]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;  // retained so fork() is consumption-independent
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace daop
