#include "common/table.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace daop {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  DAOP_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  DAOP_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      s += " " + pad(row[c], widths[c]) + " |";
    }
    return s + "\n";
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : line(row);
  }
  out += rule();
  return out;
}

std::string render_bar_chart(const std::vector<std::string>& labels,
                             const std::vector<double>& values,
                             const std::string& unit, int width) {
  DAOP_CHECK_EQ(labels.size(), values.size());
  DAOP_CHECK_GT(width, 0);
  double vmax = 0.0;
  std::size_t lmax = 0;
  for (double v : values) vmax = std::max(vmax, v);
  for (const auto& l : labels) lmax = std::max(lmax, l.size());
  if (vmax <= 0.0) vmax = 1.0;

  std::string out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const int n = static_cast<int>(values[i] / vmax * width + 0.5);
    out += pad(labels[i], lmax, false) + " | " + std::string(n, '#') + " " +
           fmt_f(values[i], 2);
    if (!unit.empty()) out += " " + unit;
    out += "\n";
  }
  return out;
}

}  // namespace daop
