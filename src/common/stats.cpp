#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace daop {

Summary summarize(std::span<const double> values) {
  DAOP_CHECK(!values.empty());
  Summary s;
  s.n = static_cast<int>(values.size());
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / s.n;
  if (s.n >= 2) {
    double ss = 0.0;
    for (double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / (s.n - 1));
    s.ci95 = 1.96 * s.stddev / std::sqrt(static_cast<double>(s.n));
  }
  s.p50 = percentile(values, 0.50);
  s.p90 = percentile(values, 0.90);
  s.p99 = percentile(values, 0.99);
  return s;
}

double percentile(std::span<const double> values, double p) {
  DAOP_CHECK(!values.empty());
  DAOP_CHECK(p >= 0.0 && p <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = p * (static_cast<double>(sorted.size()) - 1.0);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  DAOP_CHECK_EQ(x.size(), y.size());
  DAOP_CHECK(!x.empty());
  const Summary sx = summarize(x);
  const Summary sy = summarize(y);
  if (sx.stddev == 0.0 || sy.stddev == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean) * (y[i] - sy.mean);
  }
  cov /= static_cast<double>(x.size() - 1);
  return cov / (sx.stddev * sy.stddev);
}

}  // namespace daop
