// Lightweight runtime-check macros used across the DAOP codebase.
//
// DAOP_CHECK is always on (also in Release builds): these guards protect
// library invariants that, when violated, would otherwise surface as silent
// numerical corruption in experiment output. All failures throw
// daop::CheckError so tests can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace daop {

/// Thrown when a DAOP_CHECK / DAOP_CHECK_* condition fails.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "DAOP check failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace daop

#define DAOP_CHECK(cond)                                             \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::daop::detail::check_failed(#cond, __FILE__, __LINE__, "");   \
    }                                                                \
  } while (false)

#define DAOP_CHECK_MSG(cond, msg)                                    \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream daop_os_;                                   \
      daop_os_ << msg;                                               \
      ::daop::detail::check_failed(#cond, __FILE__, __LINE__,        \
                                   daop_os_.str());                  \
    }                                                                \
  } while (false)

// Binary comparison checks that include both operand values in the message.
#define DAOP_CHECK_OP_(op, a, b)                                          \
  do {                                                                    \
    if (!((a)op(b))) {                                                    \
      std::ostringstream daop_os_;                                        \
      daop_os_ << "lhs=" << (a) << " rhs=" << (b);                        \
      ::daop::detail::check_failed(#a " " #op " " #b, __FILE__, __LINE__, \
                                   daop_os_.str());                       \
    }                                                                     \
  } while (false)

#define DAOP_CHECK_EQ(a, b) DAOP_CHECK_OP_(==, a, b)
#define DAOP_CHECK_NE(a, b) DAOP_CHECK_OP_(!=, a, b)
#define DAOP_CHECK_LT(a, b) DAOP_CHECK_OP_(<, a, b)
#define DAOP_CHECK_LE(a, b) DAOP_CHECK_OP_(<=, a, b)
#define DAOP_CHECK_GT(a, b) DAOP_CHECK_OP_(>, a, b)
#define DAOP_CHECK_GE(a, b) DAOP_CHECK_OP_(>=, a, b)
