// Plain-text table rendering used by the benchmark harness to print
// paper-style tables and figure series next to the paper's reference values.
#pragma once

#include <string>
#include <vector>

namespace daop {

/// Column-aligned ASCII table. Cells are strings; callers format numbers via
/// strings.hpp helpers so each table controls its own precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Renders the table with a border and column separators.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

/// Renders a horizontal ASCII bar chart (used for "figure" benches).
/// Values must be non-negative; bars are scaled to `width` characters.
std::string render_bar_chart(const std::vector<std::string>& labels,
                             const std::vector<double>& values,
                             const std::string& unit, int width = 48);

}  // namespace daop
