#include "common/strings.hpp"

#include <cstdio>

namespace daop {

std::string fmt_f(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_pct(double ratio, int decimals) {
  return fmt_f(ratio * 100.0, decimals) + "%";
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad(const std::string& s, std::size_t width, bool left_align) {
  if (s.size() >= width) return s;
  const std::string fill(width - s.size(), ' ');
  return left_align ? s + fill : fill + s;
}

std::string fmt_bytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return fmt_f(bytes, 1) + " " + units[u];
}

}  // namespace daop
