#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace daop {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 of any seed
  // cannot produce four zeros, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DAOP_CHECK_LE(lo, hi);
  return lo + (hi - lo) * uniform();
}

int Rng::uniform_int(int lo, int hi) {
  DAOP_CHECK_LE(lo, hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
  return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::gamma(double alpha) {
  DAOP_CHECK_GT(alpha, 0.0);
  if (alpha < 1.0) {
    // Boost via Gamma(alpha+1) and the Johnk-style power correction.
    const double u = std::max(uniform(), 1e-300);
    return gamma(alpha + 1.0) * std::pow(u, 1.0 / alpha);
  }
  // Marsaglia-Tsang squeeze method.
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::dirichlet_symmetric(double alpha, int k) {
  DAOP_CHECK_GT(k, 0);
  std::vector<double> a(static_cast<std::size_t>(k), alpha);
  return dirichlet(a);
}

std::vector<double> Rng::dirichlet(std::span<const double> alpha) {
  DAOP_CHECK(!alpha.empty());
  std::vector<double> out(alpha.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    out[i] = gamma(alpha[i]);
    sum += out[i];
  }
  if (sum <= 0.0) {
    // Degenerate draw (possible only for extremely small alphas): fall back
    // to uniform so callers always receive a valid distribution.
    const double p = 1.0 / static_cast<double>(out.size());
    for (auto& v : out) v = p;
    return out;
  }
  for (auto& v : out) v /= sum;
  return out;
}

int Rng::categorical(std::span<const double> weights) {
  DAOP_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DAOP_CHECK_GE(w, 0.0);
    total += w;
  }
  DAOP_CHECK_GT(total, 0.0);
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the original seed with the stream id through splitmix so children
  // with adjacent ids are decorrelated.
  std::uint64_t m = seed_ ^ (0xD1B54A32D192ED03ULL * (stream_id + 1));
  const std::uint64_t child_seed = splitmix64(m);
  return Rng(child_seed);
}

}  // namespace daop
