// Small string/number formatting helpers (GCC 12 lacks <format>).
#pragma once

#include <string>
#include <vector>

namespace daop {

/// Formats a double with `decimals` fractional digits (printf "%.*f").
std::string fmt_f(double v, int decimals = 2);

/// Formats a ratio as a percentage string, e.g. 0.469 -> "46.9%".
std::string fmt_pct(double ratio, int decimals = 1);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Left-pads/truncates to a fixed width (for plain-text tables).
std::string pad(const std::string& s, std::size_t width, bool left_align = true);

/// Human-readable byte count, e.g. "352.0 MiB".
std::string fmt_bytes(double bytes);

}  // namespace daop
