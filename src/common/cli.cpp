#include "common/cli.hpp"

#include <cstdlib>

#include "common/check.hpp"

namespace daop {

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg = arg.substr(2);
      DAOP_CHECK_MSG(!arg.empty(), "bare '--' is not a flag");
      const auto eq = arg.find('=');
      std::string name;
      std::string value;
      if (eq != std::string::npos) {
        name = arg.substr(0, eq);
        value = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        name = arg;
        value = argv[++i];
      } else {
        name = arg;
        value = "true";  // boolean flag
      }
      DAOP_CHECK_MSG(flags_.find(name) == flags_.end(),
                     "duplicate flag --" << name);
      flags_[name] = value;
    } else if (command_.empty()) {
      command_ = arg;
    } else {
      positional_.push_back(arg);
    }
  }
}

bool FlagParser::has(const std::string& name) const {
  const bool present = flags_.count(name) != 0;
  if (present) used_[name] = true;
  return present;
}

std::string FlagParser::get(const std::string& name,
                            const std::string& def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  used_[name] = true;
  return it->second;
}

int FlagParser::get_int(const std::string& name, int def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  used_[name] = true;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  DAOP_CHECK_MSG(end && *end == '\0' && !it->second.empty(),
                 "--" << name << " expects an integer, got '" << it->second
                      << "'");
  return static_cast<int>(v);
}

double FlagParser::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  used_[name] = true;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  DAOP_CHECK_MSG(end && *end == '\0' && !it->second.empty(),
                 "--" << name << " expects a number, got '" << it->second
                      << "'");
  return v;
}

bool FlagParser::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  used_[name] = true;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  DAOP_CHECK_MSG(false, "--" << name << " expects a boolean, got '" << v << "'");
  return def;
}

std::vector<std::string> FlagParser::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_) {
    if (used_.find(name) == used_.end()) out.push_back(name);
  }
  return out;
}

const std::vector<std::string>& cli_output_modes() {
  static const std::vector<std::string> modes{
      "speed", "compare", "serve", "serve-cluster", "timeline"};
  return modes;
}

const std::vector<CliOutputFlagSpec>& cli_output_flag_matrix() {
  static const std::vector<CliOutputFlagSpec> matrix{
      {"metrics-out", {"metrics-format"}, cli_output_modes()},
      {"profile-out", {"profile-format"}, cli_output_modes()},
      {"tseries-out",
       {"tseries-format", "tseries-window", "slo-rules"},
       cli_output_modes()},
  };
  return matrix;
}

bool cli_output_flag_supported(const std::string& flag,
                               const std::string& mode) {
  for (const CliOutputFlagSpec& spec : cli_output_flag_matrix()) {
    if (spec.flag != flag) continue;
    for (const std::string& m : spec.modes) {
      if (m == mode) return true;
    }
    return false;
  }
  return false;
}

}  // namespace daop
