// Minimal fixed-size thread pool with a parallel_for helper.
//
// Used by the tensor library to parallelize GEMM row blocks and by the
// functional model for per-expert execution. The pool degrades gracefully to
// inline execution when constructed with a single worker (the common case on
// small CI machines), so results never depend on thread count.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace daop {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// iterations finish (n <= 0 is a no-op). Iterations are chunked to limit
  /// dispatch overhead. Exceptions thrown by fn are rethrown (first one
  /// wins) on the caller; the pool stays usable afterwards.
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t)>& fn);

  /// Joins all workers and drops queued-but-unstarted tasks. Idempotent;
  /// parallel_for afterwards runs inline on the caller. Exists for lifetime
  /// hygiene: the global() pool's destructor runs during static teardown in
  /// an unspecified order relative to other function-local statics (metric
  /// registries, tag pools), so anything with an exit-time destructor that
  /// touches the pool must call shutdown() first instead of relying on
  /// destruction order.
  void shutdown();

  /// Process-wide shared pool (lazily constructed). Worker threads must
  /// never be assumed alive during static destruction — see shutdown().
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace daop
