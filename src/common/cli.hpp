// Minimal command-line flag parsing for the daop_cli tool.
//
// Supports "--name value", "--name=value" and boolean "--name" flags.
// Unknown flags are an error (typos should not silently change an
// experiment).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace daop {

class FlagParser {
 public:
  /// Parses argv[1..]; the first non-flag token becomes the positional
  /// command, remaining non-flag tokens are positional arguments.
  /// Throws CheckError on malformed input.
  FlagParser(int argc, const char* const* argv);

  const std::string& command() const { return command_; }
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const;

  /// Typed getters with defaults. Throw CheckError on unparsable values.
  std::string get(const std::string& name, const std::string& def) const;
  int get_int(const std::string& name, int def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  /// Names that were provided but never read — call after all getters to
  /// reject typos.
  std::vector<std::string> unused() const;

 private:
  std::string command_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace daop
