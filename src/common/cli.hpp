// Minimal command-line flag parsing for the daop_cli tool.
//
// Supports "--name value", "--name=value" and boolean "--name" flags.
// Unknown flags are an error (typos should not silently change an
// experiment).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace daop {

class FlagParser {
 public:
  /// Parses argv[1..]; the first non-flag token becomes the positional
  /// command, remaining non-flag tokens are positional arguments.
  /// Throws CheckError on malformed input.
  FlagParser(int argc, const char* const* argv);

  const std::string& command() const { return command_; }
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const;

  /// Typed getters with defaults. Throw CheckError on unparsable values.
  std::string get(const std::string& name, const std::string& def) const;
  int get_int(const std::string& name, int def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  /// Names that were provided but never read — call after all getters to
  /// reject typos.
  std::vector<std::string> unused() const;

 private:
  std::string command_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> used_;
};

/// One row of the CLI output-flag support matrix: an observability output
/// flag, its companion configuration flags, and the report-producing modes
/// that accept it.
struct CliOutputFlagSpec {
  std::string flag;                     ///< e.g. "metrics-out"
  std::vector<std::string> companions;  ///< e.g. {"metrics-format"}
  std::vector<std::string> modes;       ///< modes accepting the flag
};

/// The report-producing daop_cli modes ("serve-cluster" is `serve --nodes
/// N`'s dedicated path). Every observability output flag is supported in
/// every one of these modes — the uniformity contract the matrix encodes.
const std::vector<std::string>& cli_output_modes();

/// The full support matrix. Commands consult cli_output_flag_supported()
/// before reading an output flag and tests assert the matrix is complete,
/// so flag support can never silently drift per command again.
const std::vector<CliOutputFlagSpec>& cli_output_flag_matrix();

bool cli_output_flag_supported(const std::string& flag,
                               const std::string& mode);

}  // namespace daop
