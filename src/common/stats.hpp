// Small descriptive-statistics helpers used by the benchmark harness to
// report dispersion (the paper reports single numbers; we add stddev /
// confidence intervals across sequences so shape claims are testable).
#pragma once

#include <span>
#include <vector>

namespace daop {

struct Summary {
  int n = 0;
  double mean = 0.0;
  double stddev = 0.0;   ///< sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean (1.96 * stddev / sqrt(n)); 0 for n < 2.
  double ci95 = 0.0;
  /// Exact percentiles (linear interpolation between order statistics).
  /// Serving tail-latency reports use these as ground truth against the
  /// bucketed histogram estimates.
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

Summary summarize(std::span<const double> values);

/// p in [0,1]; linear interpolation between order statistics.
double percentile(std::span<const double> values, double p);

/// Pearson correlation; 0 when either side is constant.
double pearson(std::span<const double> x, std::span<const double> y);

}  // namespace daop
