#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "common/check.hpp"

namespace daop {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // With one worker requested we run everything inline in parallel_for and
  // never spawn a thread at all.
  if (threads == 1) return;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && workers_.empty()) return;  // already shut down
    stop_ = true;
    // Queued-but-unstarted tasks are dropped, not run: at shutdown time
    // their captures may reference objects that are about to be destroyed.
    while (!tasks_.empty()) tasks_.pop();
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::int64_t n,
                              const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const std::int64_t chunks =
      std::min<std::int64_t>(n, static_cast<std::int64_t>(workers_.size()) * 4);
  const std::int64_t chunk_size = (n + chunks - 1) / chunks;

  std::atomic<std::int64_t> remaining{chunks};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::mutex done_mu;
  std::condition_variable done_cv;

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t begin = c * chunk_size;
      const std::int64_t end = std::min(n, begin + chunk_size);
      tasks_.emplace([&, begin, end] {
        try {
          for (std::int64_t i = begin; i < end; ++i) fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> elock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> dlock(done_mu);
          done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> dlock(done_mu);
  done_cv.wait(dlock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace daop
