// Structural configuration of decoder-only MoE models (paper Table III).
//
// The same config type serves both planes:
//  - the performance simulator only uses the parameter-count accessors to
//    derive op flops/bytes at full scale (Mixtral 8x7B, Phi-3.5 MoE);
//  - the functional plane instantiates reduced-scale configs with identical
//    architecture (RMSNorm, GQA attention with RoPE, SwiGLU experts, top-2
//    softmax gating) and actually runs the numbers.
#pragma once

#include <cstdint>
#include <string>

namespace daop::model {

struct ModelConfig {
  std::string name;

  int n_layers = 0;
  int d_model = 0;
  int n_heads = 0;
  int n_kv_heads = 0;
  int head_dim = 0;
  int d_ff = 0;        ///< expert hidden size (SwiGLU)
  int n_experts = 0;   ///< experts per layer
  int top_k = 0;       ///< experts activated per token
  int vocab_size = 0;

  float rope_theta = 10000.0F;
  float rms_eps = 1e-5F;

  /// Weight dtype size used by the performance plane (fp16 => 2 bytes).
  double bytes_per_param = 2.0;

  // ---- Derived parameter counts (per layer unless stated) ----

  /// One SwiGLU expert: w1 + w3 ([d_ff, d_model]) and w2 ([d_model, d_ff]).
  std::int64_t expert_params() const {
    return 3LL * d_model * d_ff;
  }
  /// GQA attention projections q,k,v,o.
  std::int64_t attn_params() const {
    const std::int64_t q = static_cast<std::int64_t>(d_model) * n_heads * head_dim;
    const std::int64_t kv = 2LL * d_model * n_kv_heads * head_dim;
    const std::int64_t o = static_cast<std::int64_t>(n_heads) * head_dim * d_model;
    return q + kv + o;
  }
  std::int64_t gate_params() const {
    return static_cast<std::int64_t>(d_model) * n_experts;
  }
  /// Everything in a block except experts (the paper's "non-MoE part").
  std::int64_t nonmoe_params_per_layer() const {
    return attn_params() + gate_params() + 2LL * d_model /* norms */;
  }
  std::int64_t expert_params_total() const {
    return static_cast<std::int64_t>(n_layers) * n_experts * expert_params();
  }
  std::int64_t total_params() const {
    return expert_params_total() +
           static_cast<std::int64_t>(n_layers) * nonmoe_params_per_layer() +
           2LL * vocab_size * d_model /* embedding + lm head */ + d_model;
  }

  // ---- Derived byte sizes for the performance plane ----

  double expert_bytes() const { return expert_params() * bytes_per_param; }
  double nonmoe_bytes_per_layer() const {
    return nonmoe_params_per_layer() * bytes_per_param;
  }
  /// One token's hidden state (the expert input/output that crosses PCIe).
  double hidden_state_bytes() const { return d_model * bytes_per_param; }
  /// KV-cache bytes appended per token per layer.
  double kv_bytes_per_token_per_layer() const {
    return 2.0 * n_kv_heads * head_dim * bytes_per_param;
  }

  /// Total expert slots in the model.
  int total_experts() const { return n_layers * n_experts; }
};

/// Mixtral 8x7B: 32 blocks, 8 experts, top-2, 45.1B expert params, 46.6B total.
ModelConfig mixtral_8x7b();

/// Phi-3.5 MoE: 32 blocks, 16 experts, top-2, 40.3B expert params, 41.7B total.
ModelConfig phi35_moe();

/// Reduced-scale Mixtral-style config for functional (numeric) experiments:
/// 8 layers x 8 experts, top-2. Same architecture, laptop-sized.
ModelConfig tiny_mixtral();

/// Reduced-scale Phi-style config: 8 layers x 16 experts, top-2.
ModelConfig tiny_phi();

}  // namespace daop::model
