// Maps a ModelConfig onto per-op costs of a simulated platform.
//
// This is the bridge between src/model (what work an op is) and src/sim
// (how long that work takes on a device/link). All engines in src/engines
// and src/core consume OpCosts instead of talking to the cost model
// directly, so every engine prices identical work identically.
#pragma once

#include "model/config.hpp"
#include "sim/cost_model.hpp"

namespace daop::model {

/// Per-op timing for one model on one platform. Times in seconds.
class OpCosts {
 public:
  OpCosts(const ModelConfig& cfg, const sim::CostModel& cm);

  const ModelConfig& config() const { return cfg_; }
  const sim::CostModel& cost_model() const { return cm_; }

  // ---- Decode-phase (single token) ----

  /// Non-MoE part of one block on the GPU: norms, GQA attention (including
  /// the KV-cache read at context length `ctx`), residuals and the gate.
  double nonmoe_gpu(int ctx) const;
  /// Same work on the CPU.
  double nonmoe_cpu(int ctx) const;

  /// One expert applied to one token.
  double expert_gpu() const;
  double expert_cpu() const;
  /// CPU expert with weight bytes scaled by `weight_bytes_factor` (< 1 for
  /// quantized experts — the CPU path is memory-bound, so time scales with
  /// bytes until the compute roofline takes over).
  double expert_cpu_scaled(double weight_bytes_factor) const;

  /// Gate MLP alone (used when an engine prices the gate separately).
  double gate_gpu() const;

  // ---- Prefill-phase (n tokens through the same op) ----

  double nonmoe_gpu_prefill(int n_tokens) const;
  double nonmoe_cpu_prefill(int n_tokens) const;
  /// One expert applied to `n_tokens` routed tokens.
  double expert_gpu_prefill(int n_tokens) const;
  double expert_cpu_prefill(int n_tokens) const;

  // ---- Batched decode (n_tokens sequences advancing one step) ----

  /// Non-MoE part of one block for a decode batch of `n_tokens` sequences
  /// at context length `ctx`.
  double nonmoe_gpu_batch(int n_tokens, int ctx) const;
  /// One expert applied to `n_tokens` batched decode tokens; identical
  /// work-shape to the prefill accessors (provided for intent clarity).
  double expert_gpu_batch(int n_tokens) const { return expert_gpu_prefill(n_tokens); }
  double expert_cpu_batch(int n_tokens) const { return expert_cpu_prefill(n_tokens); }

  // ---- Transfers ----

  /// Migrating one expert's weights host -> GPU.
  double expert_migration() const;
  /// Hidden-state transfer for `n_tokens` tokens, each direction.
  double activations_h2d(int n_tokens = 1) const;
  double activations_d2h(int n_tokens = 1) const;

  /// Convenience: a full block on a device with all weights resident
  /// (non-MoE + top_k experts), decode phase. Matches the paper's Table I
  /// "block on CPU / GPU" measurements.
  double full_block_gpu(int ctx) const;
  double full_block_cpu(int ctx) const;

 private:
  double nonmoe_time(const sim::DeviceSpec& dev, int n_tokens, int ctx) const;
  double expert_time(const sim::DeviceSpec& dev, int n_tokens) const;

  ModelConfig cfg_;
  sim::CostModel cm_;
};

/// Largest Expert Cache Ratio that fits a platform's GPU after the non-MoE
/// weights, embeddings and a working reserve (KV cache + activations,
/// `reserve_fraction` of GPU memory) are resident. This is what "full GPU
/// memory utilization" resolves to in the paper's Fig. 9 / Table IV setup
/// (~46.9% for Mixtral 8x7B on a 48 GB A6000).
double max_expert_cache_ratio(const ModelConfig& cfg,
                              const sim::PlatformSpec& platform,
                              double reserve_fraction = 0.06);

}  // namespace daop::model
