#include "model/weights.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace daop::model {

ModelWeights init_weights(const ModelConfig& cfg, std::uint64_t seed) {
  DAOP_CHECK_GT(cfg.d_model, 0);
  DAOP_CHECK_EQ(cfg.n_heads % cfg.n_kv_heads, 0);
  Rng root(seed);

  const float in_std = 1.0F / std::sqrt(static_cast<float>(cfg.d_model));
  const float ff_std = 1.0F / std::sqrt(static_cast<float>(cfg.d_ff));
  // Scale residual-writing projections down so the residual stream grows
  // like sqrt(depth) rather than exploding.
  const float resid_scale =
      1.0F / std::sqrt(2.0F * static_cast<float>(cfg.n_layers));

  ModelWeights w;
  {
    Rng r = root.fork(0);
    w.embedding = Tensor::randn(cfg.vocab_size, cfg.d_model, r, 1.0F);
    w.lm_head = Tensor::randn(cfg.vocab_size, cfg.d_model, r, in_std);
    w.final_norm = Tensor(cfg.d_model);
    w.final_norm.fill(1.0F);
  }

  w.layers.resize(static_cast<std::size_t>(cfg.n_layers));
  for (int l = 0; l < cfg.n_layers; ++l) {
    Rng r = root.fork(static_cast<std::uint64_t>(l) + 1);
    LayerWeights& lw = w.layers[static_cast<std::size_t>(l)];

    lw.attn_norm = Tensor(cfg.d_model);
    lw.attn_norm.fill(1.0F);
    lw.ffn_norm = Tensor(cfg.d_model);
    lw.ffn_norm.fill(1.0F);

    const int qdim = cfg.n_heads * cfg.head_dim;
    const int kvdim = cfg.n_kv_heads * cfg.head_dim;
    lw.wq = Tensor::randn(qdim, cfg.d_model, r, in_std);
    lw.wk = Tensor::randn(kvdim, cfg.d_model, r, in_std);
    lw.wv = Tensor::randn(kvdim, cfg.d_model, r, in_std);
    lw.wo = Tensor::randn(cfg.d_model, qdim, r,
                          in_std * resid_scale);
    lw.gate = Tensor::randn(cfg.n_experts, cfg.d_model, r, in_std);

    lw.experts.resize(static_cast<std::size_t>(cfg.n_experts));
    for (int e = 0; e < cfg.n_experts; ++e) {
      ExpertWeights& ew = lw.experts[static_cast<std::size_t>(e)];
      ew.w1 = Tensor::randn(cfg.d_ff, cfg.d_model, r, in_std);
      ew.w3 = Tensor::randn(cfg.d_ff, cfg.d_model, r, in_std);
      ew.w2 = Tensor::randn(cfg.d_model, cfg.d_ff, r, ff_std * resid_scale);
    }
  }
  return w;
}

}  // namespace daop::model
