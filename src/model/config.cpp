#include "model/config.hpp"

namespace daop::model {

ModelConfig mixtral_8x7b() {
  ModelConfig c;
  c.name = "Mixtral 8x7B";
  c.n_layers = 32;
  c.d_model = 4096;
  c.n_heads = 32;
  c.n_kv_heads = 8;
  c.head_dim = 128;
  c.d_ff = 14336;
  c.n_experts = 8;
  c.top_k = 2;
  c.vocab_size = 32000;
  c.rope_theta = 1e6F;
  c.bytes_per_param = 2.0;  // fp16
  return c;
}

ModelConfig phi35_moe() {
  ModelConfig c;
  c.name = "Phi-3.5 MoE";
  c.n_layers = 32;
  c.d_model = 4096;
  c.n_heads = 32;
  c.n_kv_heads = 8;
  c.head_dim = 128;
  c.d_ff = 6400;
  c.n_experts = 16;
  c.top_k = 2;
  c.vocab_size = 32064;
  c.rope_theta = 1e4F;
  c.bytes_per_param = 2.0;
  return c;
}

ModelConfig tiny_mixtral() {
  ModelConfig c;
  c.name = "tiny-mixtral (functional)";
  c.n_layers = 8;
  c.d_model = 64;
  c.n_heads = 4;
  c.n_kv_heads = 2;
  c.head_dim = 16;
  c.d_ff = 128;
  c.n_experts = 8;
  c.top_k = 2;
  c.vocab_size = 256;
  c.rope_theta = 1e4F;
  c.bytes_per_param = 4.0;  // functional plane runs fp32
  return c;
}

ModelConfig tiny_phi() {
  ModelConfig c = tiny_mixtral();
  c.name = "tiny-phi (functional)";
  c.n_experts = 16;
  c.d_ff = 64;
  return c;
}

}  // namespace daop::model
