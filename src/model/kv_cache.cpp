#include "model/kv_cache.hpp"

#include "common/check.hpp"

namespace daop::model {

KvCache::KvCache(const ModelConfig& cfg, int max_seq)
    : kv_dim_(cfg.n_kv_heads * cfg.head_dim),
      max_seq_(max_seq),
      n_layers_(cfg.n_layers) {
  DAOP_CHECK_GT(max_seq, 0);
  k_.reserve(static_cast<std::size_t>(n_layers_));
  v_.reserve(static_cast<std::size_t>(n_layers_));
  for (int l = 0; l < n_layers_; ++l) {
    k_.emplace_back(max_seq_, kv_dim_);
    v_.emplace_back(max_seq_, kv_dim_);
  }
}

std::span<float> KvCache::k_slot(int layer, int pos) {
  DAOP_CHECK(layer >= 0 && layer < n_layers_);
  DAOP_CHECK(pos >= 0 && pos < max_seq_);
  DAOP_CHECK_LE(pos, size_);  // may only write the frontier or rewrite past
  return k_[static_cast<std::size_t>(layer)].row(pos);
}

std::span<float> KvCache::v_slot(int layer, int pos) {
  DAOP_CHECK(layer >= 0 && layer < n_layers_);
  DAOP_CHECK(pos >= 0 && pos < max_seq_);
  DAOP_CHECK_LE(pos, size_);
  return v_[static_cast<std::size_t>(layer)].row(pos);
}

std::span<const float> KvCache::k_at(int layer, int pos) const {
  DAOP_CHECK(layer >= 0 && layer < n_layers_);
  DAOP_CHECK(pos >= 0 && pos <= size_ && pos < max_seq_);
  return k_[static_cast<std::size_t>(layer)].row(pos);
}

std::span<const float> KvCache::v_at(int layer, int pos) const {
  DAOP_CHECK(layer >= 0 && layer < n_layers_);
  DAOP_CHECK(pos >= 0 && pos <= size_ && pos < max_seq_);
  return v_[static_cast<std::size_t>(layer)].row(pos);
}

void KvCache::advance() {
  DAOP_CHECK_LT(size_, max_seq_);
  ++size_;
}

void KvCache::truncate(int n) {
  DAOP_CHECK(n >= 0 && n <= size_);
  size_ = n;
}

}  // namespace daop::model
