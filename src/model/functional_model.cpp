#include "model/functional_model.hpp"

#include <cmath>

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace daop::model {

FunctionalModel::FunctionalModel(ModelConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), weights_(init_weights(cfg_, seed)) {
  DAOP_CHECK_GE(cfg_.n_layers, 1);
  DAOP_CHECK_GE(cfg_.top_k, 1);
  DAOP_CHECK_LE(cfg_.top_k, cfg_.n_experts);
}

void FunctionalModel::embed(int token, std::span<float> x) const {
  DAOP_CHECK(token >= 0 && token < cfg_.vocab_size);
  DAOP_CHECK_EQ(static_cast<int>(x.size()), cfg_.d_model);
  const auto row = weights_.embedding.row(token);
  std::copy(row.begin(), row.end(), x.begin());
}

void FunctionalModel::attention_block(int layer, std::span<float> x,
                                      KvCache& kv, int pos) const {
  DAOP_CHECK(layer >= 0 && layer < cfg_.n_layers);
  DAOP_CHECK_EQ(static_cast<int>(x.size()), cfg_.d_model);
  const LayerWeights& lw = weights_.layers[static_cast<std::size_t>(layer)];
  const int qdim = cfg_.n_heads * cfg_.head_dim;
  const int kvdim = cfg_.n_kv_heads * cfg_.head_dim;
  const int group = cfg_.n_heads / cfg_.n_kv_heads;

  std::vector<float> h(static_cast<std::size_t>(cfg_.d_model));
  rmsnorm(x, lw.attn_norm.span(), cfg_.rms_eps, h);

  std::vector<float> q(static_cast<std::size_t>(qdim));
  matvec(lw.wq, h, q);
  rope_inplace(q, cfg_.n_heads, cfg_.head_dim, pos, cfg_.rope_theta);

  auto kslot = kv.k_slot(layer, pos);
  auto vslot = kv.v_slot(layer, pos);
  matvec(lw.wk, h, kslot);
  rope_inplace(kslot, cfg_.n_kv_heads, cfg_.head_dim, pos, cfg_.rope_theta);
  matvec(lw.wv, h, vslot);

  // Causal attention over positions [0, pos].
  const float inv_sqrt_d = 1.0F / std::sqrt(static_cast<float>(cfg_.head_dim));
  std::vector<float> attn_out(static_cast<std::size_t>(qdim), 0.0F);
  std::vector<float> scores(static_cast<std::size_t>(pos) + 1);
  for (int hd = 0; hd < cfg_.n_heads; ++hd) {
    const int kvh = hd / group;
    const float* qh = q.data() + static_cast<std::size_t>(hd) * cfg_.head_dim;
    for (int p = 0; p <= pos; ++p) {
      const auto kp = kv.k_at(layer, p);
      const float* kh = kp.data() + static_cast<std::size_t>(kvh) * cfg_.head_dim;
      float s = 0.0F;
      for (int d = 0; d < cfg_.head_dim; ++d) s += qh[d] * kh[d];
      scores[static_cast<std::size_t>(p)] = s * inv_sqrt_d;
    }
    softmax_inplace(std::span<float>(scores.data(), static_cast<std::size_t>(pos) + 1));
    float* oh = attn_out.data() + static_cast<std::size_t>(hd) * cfg_.head_dim;
    for (int p = 0; p <= pos; ++p) {
      const auto vp = kv.v_at(layer, p);
      const float* vh = vp.data() + static_cast<std::size_t>(kvh) * cfg_.head_dim;
      const float w = scores[static_cast<std::size_t>(p)];
      for (int d = 0; d < cfg_.head_dim; ++d) oh[d] += w * vh[d];
    }
  }
  DAOP_CHECK_EQ(static_cast<int>(kslot.size()), kvdim);

  std::vector<float> proj(static_cast<std::size_t>(cfg_.d_model));
  matvec(lw.wo, attn_out, proj);
  add_inplace(x, proj);
}

void FunctionalModel::ffn_input(int layer, std::span<const float> x,
                                std::span<float> h) const {
  DAOP_CHECK(layer >= 0 && layer < cfg_.n_layers);
  const LayerWeights& lw = weights_.layers[static_cast<std::size_t>(layer)];
  rmsnorm(x, lw.ffn_norm.span(), cfg_.rms_eps, h);
}

void FunctionalModel::gate(int layer, std::span<const float> h,
                           std::span<float> logits) const {
  DAOP_CHECK(layer >= 0 && layer < cfg_.n_layers);
  DAOP_CHECK_EQ(static_cast<int>(logits.size()), cfg_.n_experts);
  const LayerWeights& lw = weights_.layers[static_cast<std::size_t>(layer)];
  matvec(lw.gate, h, logits);
}

RouteDecision FunctionalModel::route(std::span<const float> logits) const {
  RouteDecision d;
  d.experts = topk_indices(logits, cfg_.top_k);
  d.weights.resize(d.experts.size());
  softmax_subset(logits, d.experts, d.weights);
  return d;
}

void FunctionalModel::expert_forward(int layer, int expert,
                                     std::span<const float> h,
                                     std::span<float> out) const {
  DAOP_CHECK(layer >= 0 && layer < cfg_.n_layers);
  DAOP_CHECK(expert >= 0 && expert < cfg_.n_experts);
  DAOP_CHECK_EQ(static_cast<int>(out.size()), cfg_.d_model);
  const ExpertWeights& ew =
      weights_.layers[static_cast<std::size_t>(layer)]
          .experts[static_cast<std::size_t>(expert)];

  std::vector<float> a(static_cast<std::size_t>(cfg_.d_ff));
  std::vector<float> b(static_cast<std::size_t>(cfg_.d_ff));
  matvec(ew.w1, h, a);
  matvec(ew.w3, h, b);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = silu(a[i]) * b[i];
  matvec(ew.w2, a, out);
}

void FunctionalModel::lm_logits(std::span<const float> x,
                                std::span<float> logits) const {
  DAOP_CHECK_EQ(static_cast<int>(logits.size()), cfg_.vocab_size);
  std::vector<float> h(static_cast<std::size_t>(cfg_.d_model));
  rmsnorm(x, weights_.final_norm.span(), cfg_.rms_eps, h);
  matvec(weights_.lm_head, h, logits);
}

RouteDecision FunctionalModel::official_block(
    int layer, std::span<float> x, KvCache& kv, int pos, const GateBias& bias,
    std::vector<float>* gate_logits_out) const {
  attention_block(layer, x, kv, pos);

  std::vector<float> h(static_cast<std::size_t>(cfg_.d_model));
  ffn_input(layer, x, h);

  std::vector<float> logits(static_cast<std::size_t>(cfg_.n_experts));
  gate(layer, h, logits);
  if (bias) bias(layer, pos, logits);
  RouteDecision d = route(logits);
  if (gate_logits_out) *gate_logits_out = logits;

  std::vector<float> out(static_cast<std::size_t>(cfg_.d_model));
  for (std::size_t i = 0; i < d.experts.size(); ++i) {
    expert_forward(layer, d.experts[i], h, out);
    axpy_inplace(x, d.weights[i], out);
  }
  return d;
}

OfficialDecoder::OfficialDecoder(const FunctionalModel& model)
    : model_(model) {}

std::vector<int> OfficialDecoder::generate(std::span<const int> prompt,
                                           int n_gen, const GateBias& bias,
                                           const RouteObserver& observer) const {
  DAOP_CHECK(!prompt.empty());
  DAOP_CHECK_GE(n_gen, 0);
  const ModelConfig& cfg = model_.config();
  const int total = static_cast<int>(prompt.size()) + n_gen;
  KvCache kv(cfg, total);

  std::vector<float> x(static_cast<std::size_t>(cfg.d_model));
  std::vector<float> logits(static_cast<std::size_t>(cfg.vocab_size));
  std::vector<float> gate_logits(static_cast<std::size_t>(cfg.n_experts));
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n_gen));

  int next_token = -1;
  for (int pos = 0; pos < total; ++pos) {
    const bool is_prefill = pos < static_cast<int>(prompt.size());
    const int token =
        is_prefill ? prompt[static_cast<std::size_t>(pos)] : next_token;
    model_.embed(token, x);
    for (int l = 0; l < cfg.n_layers; ++l) {
      std::vector<float>* logits_ptr = observer ? &gate_logits : nullptr;
      RouteDecision d = model_.official_block(l, x, kv, pos, bias, logits_ptr);
      if (observer) observer(l, pos, is_prefill, gate_logits, d);
    }
    kv.advance();
    if (pos == total - 1 && n_gen == 0) break;
    model_.lm_logits(x, logits);
    next_token = argmax(logits);
    if (!is_prefill || pos == static_cast<int>(prompt.size()) - 1) {
      if (static_cast<int>(out.size()) < n_gen) out.push_back(next_token);
    }
  }
  return out;
}

}  // namespace daop::model
