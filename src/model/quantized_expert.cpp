#include "model/quantized_expert.hpp"

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace daop::model {

QuantizedExpert quantize_expert(const ExpertWeights& w,
                                const QuantSpec& spec) {
  return QuantizedExpert{QuantizedTensor::quantize(w.w1, spec),
                         QuantizedTensor::quantize(w.w3, spec),
                         QuantizedTensor::quantize(w.w2, spec)};
}

void expert_forward_quantized(const QuantizedExpert& e,
                              std::span<const float> h,
                              std::span<float> out) {
  const auto d_ff = static_cast<std::size_t>(e.w1.rows());
  DAOP_CHECK_EQ(e.w3.rows(), e.w1.rows());
  DAOP_CHECK_EQ(e.w2.cols(), e.w1.rows());
  std::vector<float> a(d_ff);
  std::vector<float> b(d_ff);
  e.w1.matvec(h, a);
  e.w3.matvec(h, b);
  for (std::size_t i = 0; i < d_ff; ++i) a[i] = silu(a[i]) * b[i];
  e.w2.matvec(a, out);
}

QuantizedExpertSet::QuantizedExpertSet(const FunctionalModel& model,
                                       const QuantSpec& spec)
    : spec_(spec),
      n_layers_(model.config().n_layers),
      n_experts_(model.config().n_experts) {
  experts_.reserve(static_cast<std::size_t>(n_layers_ * n_experts_));
  for (int l = 0; l < n_layers_; ++l) {
    for (int e = 0; e < n_experts_; ++e) {
      experts_.push_back(quantize_expert(
          model.weights().layers[static_cast<std::size_t>(l)]
              .experts[static_cast<std::size_t>(e)],
          spec_));
    }
  }
}

const QuantizedExpert& QuantizedExpertSet::get(int layer, int expert) const {
  DAOP_CHECK(layer >= 0 && layer < n_layers_);
  DAOP_CHECK(expert >= 0 && expert < n_experts_);
  return experts_[static_cast<std::size_t>(layer * n_experts_ + expert)];
}

void QuantizedExpertSet::forward(int layer, int expert,
                                 std::span<const float> h,
                                 std::span<float> out) const {
  expert_forward_quantized(get(layer, expert), h, out);
}

}  // namespace daop::model
