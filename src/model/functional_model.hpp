// Functional (real-numerics) decoder-only MoE model.
//
// Architecture matches Mixtral/Phi-3.5-MoE: RMSNorm -> GQA attention with
// RoPE -> residual -> RMSNorm -> top-k softmax-gated SwiGLU experts ->
// residual; final RMSNorm + LM head. The class exposes per-sub-block
// primitives rather than a monolithic forward so that executors (official
// baseline in this header; DAOP's approximate executor in src/core) can
// compose them differently while sharing identical numerics.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "model/config.hpp"
#include "model/kv_cache.hpp"
#include "model/weights.hpp"

namespace daop::model {

/// Optional per-(layer, pos) additive bias on gate logits. The workload
/// conditioner in src/data uses this to imprint dataset-specific routing
/// statistics on the functional model; it is applied identically to the
/// official and DAOP executors, so it acts as part of the input, not as an
/// approximation.
using GateBias =
    std::function<void(int layer, int pos, std::span<float> logits)>;

/// Routing decision for one token at one layer.
struct RouteDecision {
  std::vector<int> experts;    ///< top_k expert ids, descending score
  std::vector<float> weights;  ///< renormalized softmax weights, same order
};

/// Observer invoked at every gate evaluation (used to collect activation
/// patterns for observations ①/②, Table II, and Algorithm 1 counting).
using RouteObserver = std::function<void(
    int layer, int pos, bool is_prefill, std::span<const float> logits,
    const RouteDecision& decision)>;

class FunctionalModel {
 public:
  FunctionalModel(ModelConfig cfg, std::uint64_t seed);

  const ModelConfig& config() const { return cfg_; }
  const ModelWeights& weights() const { return weights_; }

  /// x = embedding[token]
  void embed(int token, std::span<float> x) const;

  /// x <- x + Attention(RMSNorm(x)); appends this position's k/v to `kv`.
  /// `pos` must equal kv.size() for the layer being extended.
  void attention_block(int layer, std::span<float> x, KvCache& kv,
                       int pos) const;

  /// h = RMSNorm_ffn(x): the hidden state fed to the gate and the experts —
  /// and, in DAOP, the state used to predict the next layer's experts.
  void ffn_input(int layer, std::span<const float> x,
                 std::span<float> h) const;

  /// logits = gate_layer(h); logits must have n_experts elements.
  void gate(int layer, std::span<const float> h,
            std::span<float> logits) const;

  /// Selects top_k experts from logits and renormalizes their scores.
  RouteDecision route(std::span<const float> logits) const;

  /// out = SwiGLU expert (w2(silu(w1 h) * (w3 h))); out has d_model elems.
  void expert_forward(int layer, int expert, std::span<const float> h,
                      std::span<float> out) const;

  /// logits over the vocabulary from the final residual state.
  void lm_logits(std::span<const float> x, std::span<float> logits) const;

  /// Runs one full official block (attention + exact MoE) in place,
  /// returning the route taken. Convenience for the baseline executor.
  /// When `gate_logits_out` is non-null it receives the (biased) gate
  /// logits that produced the decision.
  RouteDecision official_block(int layer, std::span<float> x, KvCache& kv,
                               int pos, const GateBias& bias,
                               std::vector<float>* gate_logits_out = nullptr) const;

 private:
  ModelConfig cfg_;
  ModelWeights weights_;
};

/// Exact greedy decoder: the paper's "Official" rows in Tables V/VI.
class OfficialDecoder {
 public:
  explicit OfficialDecoder(const FunctionalModel& model);

  /// Prefill `prompt` then greedily decode `n_gen` tokens. `bias` (optional)
  /// conditions the router; `observer` (optional) sees every routing event.
  std::vector<int> generate(std::span<const int> prompt, int n_gen,
                            const GateBias& bias = nullptr,
                            const RouteObserver& observer = nullptr) const;

 private:
  const FunctionalModel& model_;
};

}  // namespace daop::model
