// Synthetic model weights for the functional plane.
//
// Weights are deterministic in (config, seed). Initialization follows the
// usual transformer recipe (Gaussian, 1/sqrt(fan_in) scaling, output
// projections additionally scaled down by sqrt(2 * n_layers)) so that
// activations stay well-conditioned through deep residual stacks — which is
// what makes observation ③ (next-layer predictability through the residual
// stream) reproducible with synthetic weights.
#pragma once

#include <cstdint>
#include <vector>

#include "model/config.hpp"
#include "tensor/tensor.hpp"

namespace daop::model {

struct ExpertWeights {
  Tensor w1;  ///< [d_ff, d_model]   gate projection of SwiGLU
  Tensor w3;  ///< [d_ff, d_model]   up projection
  Tensor w2;  ///< [d_model, d_ff]   down projection
};

struct LayerWeights {
  Tensor attn_norm;  ///< [d_model] RMSNorm gain before attention
  Tensor ffn_norm;   ///< [d_model] RMSNorm gain before the MoE FFN
  Tensor wq;         ///< [n_heads*head_dim, d_model]
  Tensor wk;         ///< [n_kv_heads*head_dim, d_model]
  Tensor wv;         ///< [n_kv_heads*head_dim, d_model]
  Tensor wo;         ///< [d_model, n_heads*head_dim]
  Tensor gate;       ///< [n_experts, d_model] router
  std::vector<ExpertWeights> experts;
};

struct ModelWeights {
  Tensor embedding;   ///< [vocab, d_model]
  Tensor final_norm;  ///< [d_model]
  Tensor lm_head;     ///< [vocab, d_model]
  std::vector<LayerWeights> layers;
};

/// Builds deterministic synthetic weights for `cfg`.
ModelWeights init_weights(const ModelConfig& cfg, std::uint64_t seed);

}  // namespace daop::model
