// Quantized SwiGLU experts for the functional plane.
//
// Supports the EdgeMoE-style "CPU experts run quantized" extension: CPU
// memory bandwidth, not compute, bounds expert execution, so shrinking
// weights to 4-8 bits speeds the CPU path at a measurable accuracy cost.
// This module provides the numerics; core::DaopConfig::cpu_quant_bits wires
// it into the DAOP executor.
#pragma once

#include <memory>
#include <vector>

#include "model/functional_model.hpp"
#include "tensor/quant.hpp"

namespace daop::model {

struct QuantizedExpert {
  QuantizedTensor w1;
  QuantizedTensor w3;
  QuantizedTensor w2;
};

QuantizedExpert quantize_expert(const ExpertWeights& w, const QuantSpec& spec);

/// out = SwiGLU with quantized weights (dequant fused into the GEMVs).
void expert_forward_quantized(const QuantizedExpert& e,
                              std::span<const float> h, std::span<float> out);

/// Eagerly quantized copies of every expert in a model.
class QuantizedExpertSet {
 public:
  QuantizedExpertSet(const FunctionalModel& model, const QuantSpec& spec);

  const QuantSpec& spec() const { return spec_; }
  const QuantizedExpert& get(int layer, int expert) const;

  /// Forward through the quantized copy of (layer, expert).
  void forward(int layer, int expert, std::span<const float> h,
               std::span<float> out) const;

 private:
  QuantSpec spec_;
  int n_layers_ = 0;
  int n_experts_ = 0;
  std::vector<QuantizedExpert> experts_;  // layer-major
};

}  // namespace daop::model
