#include "model/op_costs.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace daop::model {
namespace {

// Kernel counts per op, matching a Transformers-style implementation: they
// set the fixed launch-overhead floor that makes small decode GEMVs slower
// than the pure roofline.
constexpr int kAttnKernels = 14;  // 2 norms, qkv, rope, attn, o-proj, adds
constexpr int kGateKernels = 2;   // gate matmul + topk/softmax
constexpr int kExpertKernels = 4; // w1, w3, silu*mul, w2

}  // namespace

OpCosts::OpCosts(const ModelConfig& cfg, const sim::CostModel& cm)
    : cfg_(cfg), cm_(cm) {
  DAOP_CHECK_GT(cfg_.n_layers, 0);
  DAOP_CHECK_GT(cfg_.n_experts, 0);
  DAOP_CHECK_GT(cfg_.top_k, 0);
}

double OpCosts::nonmoe_time(const sim::DeviceSpec& dev, int n_tokens,
                            int ctx) const {
  DAOP_CHECK_GT(n_tokens, 0);
  DAOP_CHECK_GE(ctx, 0);
  // Projections + gate: 2 flops per weight per token.
  const double proj_flops =
      2.0 * (cfg_.attn_params() + cfg_.gate_params()) * n_tokens;
  // Attention scores/values: per token, 2 * ctx * head_dim flops per head
  // for QK^T and same for PV.
  const double attn_flops =
      4.0 * cfg_.n_heads * cfg_.head_dim * static_cast<double>(ctx) * n_tokens;
  // Weight read (once per op) + KV cache read (per token).
  const double bytes =
      cfg_.nonmoe_bytes_per_layer() +
      cfg_.kv_bytes_per_token_per_layer() * static_cast<double>(ctx) * n_tokens;
  return cm_.dense_op_time(dev, proj_flops + attn_flops, bytes,
                           kAttnKernels + kGateKernels);
}

double OpCosts::expert_time(const sim::DeviceSpec& dev, int n_tokens) const {
  DAOP_CHECK_GT(n_tokens, 0);
  const double flops = 2.0 * cfg_.expert_params() * n_tokens;
  const double bytes = cfg_.expert_bytes() +
                       2.0 * cfg_.hidden_state_bytes() * n_tokens;
  return cm_.dense_op_time(dev, flops, bytes, kExpertKernels);
}

double OpCosts::nonmoe_gpu(int ctx) const {
  return nonmoe_time(cm_.platform().gpu, 1, ctx);
}

double OpCosts::nonmoe_cpu(int ctx) const {
  return nonmoe_time(cm_.platform().cpu, 1, ctx);
}

double OpCosts::expert_gpu() const { return expert_time(cm_.platform().gpu, 1); }

double OpCosts::expert_cpu() const { return expert_time(cm_.platform().cpu, 1); }

double OpCosts::expert_cpu_scaled(double weight_bytes_factor) const {
  DAOP_CHECK_GT(weight_bytes_factor, 0.0);
  const double flops = 2.0 * cfg_.expert_params();
  const double bytes = cfg_.expert_bytes() * weight_bytes_factor +
                       2.0 * cfg_.hidden_state_bytes();
  return cm_.dense_op_time(cm_.platform().cpu, flops, bytes, kExpertKernels);
}

double OpCosts::gate_gpu() const {
  const double flops = 2.0 * cfg_.gate_params();
  const double bytes = cfg_.gate_params() * cfg_.bytes_per_param;
  return cm_.gpu_op_time(flops, bytes, kGateKernels);
}

double OpCosts::nonmoe_gpu_prefill(int n_tokens) const {
  // Average context during prefill ~ n/2.
  return nonmoe_time(cm_.platform().gpu, n_tokens, n_tokens / 2);
}

double OpCosts::nonmoe_cpu_prefill(int n_tokens) const {
  return nonmoe_time(cm_.platform().cpu, n_tokens, n_tokens / 2);
}

double OpCosts::expert_gpu_prefill(int n_tokens) const {
  return expert_time(cm_.platform().gpu, n_tokens);
}

double OpCosts::expert_cpu_prefill(int n_tokens) const {
  return expert_time(cm_.platform().cpu, n_tokens);
}

double OpCosts::nonmoe_gpu_batch(int n_tokens, int ctx) const {
  return nonmoe_time(cm_.platform().gpu, n_tokens, ctx);
}

double OpCosts::expert_migration() const {
  return cm_.h2d_time(cfg_.expert_bytes());
}

double OpCosts::activations_h2d(int n_tokens) const {
  return cm_.h2d_time(cfg_.hidden_state_bytes() * n_tokens);
}

double OpCosts::activations_d2h(int n_tokens) const {
  return cm_.d2h_time(cfg_.hidden_state_bytes() * n_tokens);
}

double OpCosts::full_block_gpu(int ctx) const {
  return nonmoe_gpu(ctx) + cfg_.top_k * expert_gpu();
}

double OpCosts::full_block_cpu(int ctx) const {
  return nonmoe_cpu(ctx) + cfg_.top_k * expert_cpu();
}

double max_expert_cache_ratio(const ModelConfig& cfg,
                              const sim::PlatformSpec& platform,
                              double reserve_fraction) {
  DAOP_CHECK_GE(reserve_fraction, 0.0);
  DAOP_CHECK_LT(reserve_fraction, 1.0);
  const double nonmoe_total =
      static_cast<double>(cfg.n_layers) * cfg.nonmoe_bytes_per_layer() +
      2.0 * cfg.vocab_size * cfg.d_model * cfg.bytes_per_param;
  const double usable = platform.gpu.mem_capacity_bytes *
                            (1.0 - reserve_fraction) -
                        nonmoe_total;
  if (usable <= 0.0) return 0.0;
  const double slots = std::floor(usable / cfg.expert_bytes());
  const double total = static_cast<double>(cfg.n_layers) * cfg.n_experts;
  return std::min(1.0, slots / total);
}

}  // namespace daop::model
