// Per-layer key/value cache for autoregressive decoding.
#pragma once

#include <span>
#include <vector>

#include "model/config.hpp"
#include "tensor/tensor.hpp"

namespace daop::model {

class KvCache {
 public:
  KvCache(const ModelConfig& cfg, int max_seq);

  int max_seq() const { return max_seq_; }
  /// Number of positions currently filled (same across layers by contract).
  int size() const { return size_; }

  /// Appends one position worth of k/v for `layer`; all layers must be
  /// appended for a position before advance() is called.
  std::span<float> k_slot(int layer, int pos);
  std::span<float> v_slot(int layer, int pos);
  std::span<const float> k_at(int layer, int pos) const;
  std::span<const float> v_at(int layer, int pos) const;

  /// Marks position `size()` complete across all layers.
  void advance();

  /// Drops cached positions back to `n` (used to replay a prefix).
  void truncate(int n);

  void clear() { size_ = 0; }

 private:
  int kv_dim_ = 0;
  int max_seq_ = 0;
  int n_layers_ = 0;
  int size_ = 0;
  std::vector<Tensor> k_;  // per layer: [max_seq, kv_dim]
  std::vector<Tensor> v_;
};

}  // namespace daop::model
