// Dynamic sparsity-aware expert cache (ROADMAP item 2).
//
// DAOP freezes expert placement after prefill; MoE-Infinity-style systems
// instead keep re-scoring experts as routing drifts mid-sequence or as
// concurrent sessions contend for the same GPU slots. ExpertCache is the
// policy family behind `--cache-policy`: it observes every expert execution
// (GPU and CPU) across all live sessions, and at a fixed decode-token cadence
// proposes swaps that promote hot CPU-resident experts over cold GPU-resident
// victims. The cache only *plans*; SequenceSession::maybe_cache_realloc()
// executes each plan as an ordinary migration under the existing cost model,
// hazard plane, and retry discipline, then commits the swap through the
// PlacementArbiter so pinned working sets stay inviolable. Every committed
// eviction/fill lands exactly once in the ledger, which is what the
// invariant harness (tests/cache/expert_cache_invariants_test.cpp) and the
// `daop_cache_*` metric families audit.
//
// Policy `frozen` constructs no ExpertCache at all: every wiring site checks
// a nullptr, so frozen runs are byte-identical to the pre-cache goldens.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "cache/placement.hpp"
#include "data/routing_trace.hpp"

namespace daop::cache {

class PlacementArbiter;

/// Eviction/promotion scoring family. kFrozen is the DAOP paper's behaviour
/// (placement fixed after prefill); the rest re-migrate during decode.
enum class CachePolicy {
  kFrozen,              ///< No dynamic cache; placement frozen at prefill.
  kLru,                 ///< Score = last execution time (recency).
  kLfu,                 ///< Score = cumulative execution count.
  kActivationWeighted,  ///< Score = EWMA of per-interval activation counts.
  kReusePredictor,      ///< MoE-Infinity style: aggregate sequence-level
                        ///< reuse signatures of all live sessions.
};

const char* cache_policy_name(CachePolicy policy);
/// Parses a policy name; CHECK-fails listing the valid names on a typo.
CachePolicy parse_cache_policy(const std::string& name);
/// All policies, frozen first (CLI/report ordering).
std::vector<CachePolicy> all_cache_policies();
/// The four dynamic policies (everything but kFrozen).
std::vector<CachePolicy> dynamic_cache_policies();

struct ExpertCacheOptions {
  CachePolicy policy = CachePolicy::kFrozen;
  /// Decode tokens between reallocation scans (per session).
  int realloc_interval = 4;
  /// Max swaps committed per scan (PCIe budget per decode step).
  int max_swaps_per_step = 2;
  /// EWMA decay for kActivationWeighted (score = decay*old + interval count).
  double decay = 0.5;
  /// A CPU expert must out-score the GPU victim by this fraction of the
  /// layer's score spread (max - min) before a swap is planned. Relative so
  /// one knob works across policies whose score units differ (timestamps
  /// for lru, counts for lfu); suppresses thrashing on near-tied scores.
  double hysteresis = 0.05;
  /// Retry/deadline discipline for cache migrations (same semantics as
  /// DaopConfig: retries spent or deadline passed => abort, keep old expert).
  int max_migration_retries = 2;
  double migration_deadline_factor = 4.0;

  /// True when a dynamic policy is selected. Frozen == no cache object.
  bool enabled() const { return policy != CachePolicy::kFrozen; }
  void validate() const;
};

/// One committed placement change. A swap appends a kEvict for the demoted
/// expert then a kFill for the promoted one, so every byte moved appears
/// exactly once in the ledger.
struct CacheEvent {
  enum class Kind { kEvict, kFill };
  Kind kind = Kind::kFill;
  int layer = 0;
  int expert = 0;        ///< The expert this event moved.
  int peer = 0;          ///< The other half of the swap pair.
  long long session = 0; ///< Session whose scan committed the swap.
  double time = 0.0;     ///< Simulated commit time (migration done).
  /// Arbiter pins held by *other* sessions on the evicted expert at commit
  /// time. Invariant (a): always 0 — pinned working sets are inviolable.
  int victim_other_pins = 0;
  /// GPU-resident expert count of `layer` after the event, and the layer's
  /// slot capacity. Invariant (b): gpu_count_after <= capacity.
  int gpu_count_after = 0;
  int capacity = 0;
};

/// A swap the arbiter refused (the victim was pinned between plan and
/// commit). `holders` names the contending sessions so refusal diagnostics
/// can say *who* blocked the eviction, not just that it happened.
struct CacheRefusal {
  int layer = 0;
  int expert_in = 0;
  int expert_out = 0;
  long long session = 0;
  double time = 0.0;
  std::vector<long long> holders;  ///< Contending session ids, sorted.

  /// Human-readable diagnostic naming the contending sessions.
  std::string describe() const;
};

/// A swap proposed by plan(): promote `expert_in` (CPU) over `expert_out`
/// (GPU) in `layer`. Execution/commit is the session's job.
struct PlannedSwap {
  int layer = 0;
  int expert_in = 0;
  int expert_out = 0;
};

/// Cross-session demand tracker + swap planner. One instance is shared by
/// every live session of a scheduler (or per cluster node); all state
/// updates are deterministic and iteration-order-stable (flat vectors plus
/// an ordered map of session signatures — never an unordered container).
class ExpertCache {
 public:
  ExpertCache(const ExpertCacheOptions& options, int n_layers, int n_experts);

  const ExpertCacheOptions& options() const { return opt_; }
  int n_layers() const { return n_layers_; }
  int n_experts() const { return n_experts_; }

  /// Registers a session's prefill routing trace as its initial reuse
  /// signature (kReusePredictor aggregates these across live sessions).
  void note_session_open(long long session, const data::SequenceTrace& trace);
  /// Drops the session's signature. Idempotent — close()/abandon()/RAII
  /// destruction may each call it.
  void note_session_close(long long session);
  /// Observes one expert execution (GPU or CPU) at simulated time `t`.
  void note_use(int layer, int expert, long long session, double t);

  /// Plans up to max_swaps_per_step promotions for `session` given the
  /// current shared placement. Victims pinned by *other* sessions are
  /// skipped (their demand is live by definition); remaining GPU slots are
  /// scored by aggregate demand. Pure planning — no placement mutation.
  std::vector<PlannedSwap> plan(const Placement& placement,
                                const PlacementArbiter* arbiter,
                                long long session);

  /// Records a committed swap. `victim_other_pins` is the arbiter's pin
  /// count for other sessions on expert_out at commit time (invariantly 0);
  /// `placement` is read *after* the swap for gpu_count/capacity capture.
  void commit(const PlannedSwap& swap, long long session, double time,
              int victim_other_pins, const Placement& placement);
  /// Records an arbiter refusal with the contending session ids.
  void record_refusal(const PlannedSwap& swap, long long session, double time,
                      std::vector<long long> holders);
  /// Records a migration abandoned by the retry/deadline discipline.
  void record_abort(const PlannedSwap& swap, long long session, double time);

  const std::vector<CacheEvent>& ledger() const { return ledger_; }
  const std::vector<CacheRefusal>& refusals() const { return refusals_; }
  long long fills() const { return fills_; }
  long long evictions() const { return evictions_; }
  long long aborts() const { return aborts_; }
  long long plans() const { return plans_; }
  int live_sessions() const { return static_cast<int>(live_.size()); }

  /// Current demand score of (layer, expert) under the active policy.
  double score(int layer, int expert) const;

  /// Fig8-style attribution report: policy, scan/commit totals, and the
  /// most-migrated experts (where the dynamic wins come from).
  std::string report() const;

 private:
  std::size_t idx(int layer, int expert) const;

  ExpertCacheOptions opt_;
  int n_layers_ = 0;
  int n_experts_ = 0;

  // Flat [layer * n_experts + expert] demand statistics.
  std::vector<double> last_use_;   // kLru: latest execution time.
  std::vector<double> freq_;       // kLfu: cumulative execution count.
  std::vector<double> ewma_;       // kActivationWeighted: decayed rate.
  std::vector<double> prev_freq_;  // freq_ snapshot at last EWMA update.

  // kReusePredictor: per-live-session activation signatures, seeded from
  // the prefill trace and updated by note_use. Ordered map so aggregate
  // scores sum in deterministic session order.
  std::map<long long, std::vector<double>> live_;

  std::vector<CacheEvent> ledger_;
  std::vector<CacheRefusal> refusals_;
  long long fills_ = 0;
  long long evictions_ = 0;
  long long aborts_ = 0;
  long long plans_ = 0;
};

}  // namespace daop::cache
