#include "cache/calibration.hpp"

#include "common/check.hpp"

namespace daop::cache {

std::vector<std::vector<double>> calibrate_activation_counts(
    const data::TraceGenerator& gen, int n_sequences) {
  DAOP_CHECK_GT(n_sequences, 0);
  std::vector<std::vector<double>> total;
  for (int s = 0; s < n_sequences; ++s) {
    const data::SequenceTrace tr = gen.generate(s);
    const auto counts = tr.activation_counts(data::Phase::Decode);
    if (total.empty()) {
      total.assign(counts.size(),
                   std::vector<double>(counts[0].size(), 0.0));
    }
    for (std::size_t l = 0; l < counts.size(); ++l) {
      for (std::size_t e = 0; e < counts[l].size(); ++e) {
        total[l][e] += counts[l][e];
      }
    }
  }
  return total;
}

}  // namespace daop::cache
