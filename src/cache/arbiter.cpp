#include "cache/arbiter.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace daop::cache {

PlacementArbiter::PlacementArbiter(Placement initial)
    : placement_(std::move(initial)),
      pins_(static_cast<std::size_t>(placement_.n_layers()) *
            static_cast<std::size_t>(placement_.n_experts())),
      weight_ready_(pins_.size(), 0.0) {}

std::size_t PlacementArbiter::idx(int layer, int expert) const {
  DAOP_CHECK_GE(layer, 0);
  DAOP_CHECK_LT(layer, placement_.n_layers());
  DAOP_CHECK_GE(expert, 0);
  DAOP_CHECK_LT(expert, placement_.n_experts());
  return static_cast<std::size_t>(layer) *
             static_cast<std::size_t>(placement_.n_experts()) +
         static_cast<std::size_t>(expert);
}

void PlacementArbiter::pin(int layer, int expert, long long session) {
  ++pins_[idx(layer, expert)][session];
}

void PlacementArbiter::unpin(int layer, int expert, long long session) {
  auto& holders = pins_[idx(layer, expert)];
  const auto it = holders.find(session);
  DAOP_CHECK_MSG(it != holders.end(),
                 "unpin without matching pin: layer " << layer << " expert "
                                                      << expert << " session "
                                                      << session);
  if (--it->second == 0) holders.erase(it);
}

void PlacementArbiter::unpin_session(long long session) {
  for (auto& holders : pins_) holders.erase(session);
}

int PlacementArbiter::pin_count(int layer, int expert) const {
  int n = 0;
  for (const auto& [session, count] : pins_[idx(layer, expert)]) n += count;
  return n;
}

int PlacementArbiter::pin_count(int expert) const {
  DAOP_CHECK_GE(expert, 0);
  DAOP_CHECK_LT(expert, placement_.n_experts());
  int n = 0;
  for (int layer = 0; layer < placement_.n_layers(); ++layer) {
    n += pin_count(layer, expert);
  }
  return n;
}

std::vector<long long> PlacementArbiter::pinning_sessions(int layer,
                                                          int expert) const {
  std::vector<long long> out;
  for (const auto& [holder, count] : pins_[idx(layer, expert)]) {
    if (count > 0) out.push_back(holder);
  }
  std::sort(out.begin(), out.end());
  return out;
}

int PlacementArbiter::total_pin_count() const {
  int n = 0;
  for (const auto& holders : pins_) {
    for (const auto& [session, count] : holders) n += count;
  }
  return n;
}

bool PlacementArbiter::pinned_by_other(int layer, int expert,
                                       long long session) const {
  for (const auto& [holder, count] : pins_[idx(layer, expert)]) {
    if (holder != session && count > 0) return true;
  }
  return false;
}

bool PlacementArbiter::try_swap(int layer, int expert_in, int expert_out,
                                long long session) {
  if (pinned_by_other(layer, expert_out, session)) return false;
  placement_.swap(layer, expert_in, expert_out);
  return true;
}

bool PlacementArbiter::try_evict(int layer, int expert, long long session) {
  if (pinned_by_other(layer, expert, session)) return false;
  placement_.move_to_cpu(layer, expert);
  return true;
}

double PlacementArbiter::weight_ready(int layer, int expert) const {
  return weight_ready_[idx(layer, expert)];
}

void PlacementArbiter::set_weight_ready(int layer, int expert, double t) {
  double& slot = weight_ready_[idx(layer, expert)];
  slot = std::max(slot, t);
}

}  // namespace daop::cache
