// Calibration of dominant experts from a calibration dataset (§IV-A).
//
// The paper decodes the ShareGPT calibration set and accumulates layer-wise
// expert activation counts to seed the initial GPU expert cache. This
// helper does the same over synthesized calibration traces.
#pragma once

#include <cstdint>
#include <vector>

#include "data/trace_generator.hpp"

namespace daop::cache {

/// Accumulates decode-phase activation counts of `n_sequences` calibration
/// sequences: result[layer][expert] = tokens routed there.
std::vector<std::vector<double>> calibrate_activation_counts(
    const data::TraceGenerator& gen, int n_sequences);

}  // namespace daop::cache
