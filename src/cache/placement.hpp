// Expert placement state: which device holds each (layer, expert).
//
// The Expert Cache Ratio (ECR) — the paper's central resource knob — is the
// fraction of all expert slots resident on the GPU. Placement enforces the
// per-layer GPU capacity invariant; policies (calibrated init, Algorithm 1
// swaps, LRU eviction) live with their owners and mutate state through this
// class so the invariant can never be silently violated.
#pragma once

#include <cstdint>
#include <vector>

namespace daop::cache {

enum class Device : std::uint8_t { Cpu = 0, Gpu = 1 };

class Placement {
 public:
  Placement(int n_layers, int n_experts);

  int n_layers() const { return n_layers_; }
  int n_experts() const { return n_experts_; }

  Device device(int layer, int expert) const;
  bool on_gpu(int layer, int expert) const {
    return device(layer, expert) == Device::Gpu;
  }

  /// GPU slots allowed for `layer`. Moving an expert to the GPU beyond
  /// capacity is a checked error.
  int capacity(int layer) const;
  void set_capacity(int layer, int cap);

  /// Experts currently on the GPU in `layer`.
  int gpu_count(int layer) const;
  int total_gpu_count() const;

  /// Places `expert` on the GPU (must have free capacity; no-op if already
  /// there — returns false in that case).
  bool move_to_gpu(int layer, int expert);
  /// Evicts `expert` to the CPU (no-op if already there; returns false).
  bool move_to_cpu(int layer, int expert);
  /// Atomic swap: `expert_out` leaves the GPU, `expert_in` enters.
  void swap(int layer, int expert_in, int expert_out);

  std::vector<int> gpu_experts(int layer) const;
  std::vector<int> cpu_experts(int layer) const;

  /// Fraction of all experts resident on GPU.
  double ecr() const;

 private:
  int index(int layer, int expert) const;

  int n_layers_;
  int n_experts_;
  std::vector<Device> device_;
  std::vector<int> capacity_;
  std::vector<int> gpu_count_;
};

/// Number of GPU expert slots implied by an ECR.
int total_slots_for_ecr(int n_layers, int n_experts, double ecr);

/// Paper §IV-A memory initialization: standardize cache size across layers
/// (total_slots / n_layers each), fill every layer with its top experts by
/// calibrated activation counts, then hand the remainder (< n_layers slots)
/// to the globally most-activated uncached experts.
/// `calib_counts[layer][expert]` comes from decoding the calibration set.
Placement init_placement_calibrated(
    int n_layers, int n_experts, double ecr,
    const std::vector<std::vector<double>>& calib_counts);

/// Alternative initialization (ablation of §IV-A's per-layer
/// standardization): hand ALL slots to the globally most-activated
/// (layer, expert) pairs with no per-layer floor. Layers with flat
/// calibration profiles can end up with zero GPU experts.
Placement init_placement_global_greedy(
    int n_layers, int n_experts, double ecr,
    const std::vector<std::vector<double>>& calib_counts);

}  // namespace daop::cache
