#include "cache/placement.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace daop::cache {

Placement::Placement(int n_layers, int n_experts)
    : n_layers_(n_layers), n_experts_(n_experts) {
  DAOP_CHECK_GT(n_layers, 0);
  DAOP_CHECK_GT(n_experts, 0);
  device_.assign(static_cast<std::size_t>(n_layers) * n_experts, Device::Cpu);
  capacity_.assign(static_cast<std::size_t>(n_layers), 0);
  gpu_count_.assign(static_cast<std::size_t>(n_layers), 0);
}

int Placement::index(int layer, int expert) const {
  DAOP_CHECK(layer >= 0 && layer < n_layers_);
  DAOP_CHECK(expert >= 0 && expert < n_experts_);
  return layer * n_experts_ + expert;
}

Device Placement::device(int layer, int expert) const {
  return device_[static_cast<std::size_t>(index(layer, expert))];
}

int Placement::capacity(int layer) const {
  DAOP_CHECK(layer >= 0 && layer < n_layers_);
  return capacity_[static_cast<std::size_t>(layer)];
}

void Placement::set_capacity(int layer, int cap) {
  DAOP_CHECK(layer >= 0 && layer < n_layers_);
  DAOP_CHECK(cap >= 0 && cap <= n_experts_);
  DAOP_CHECK_GE(cap, gpu_count(layer));
  capacity_[static_cast<std::size_t>(layer)] = cap;
}

int Placement::gpu_count(int layer) const {
  DAOP_CHECK(layer >= 0 && layer < n_layers_);
  return gpu_count_[static_cast<std::size_t>(layer)];
}

int Placement::total_gpu_count() const {
  int total = 0;
  for (int c : gpu_count_) total += c;
  return total;
}

bool Placement::move_to_gpu(int layer, int expert) {
  const int i = index(layer, expert);
  if (device_[static_cast<std::size_t>(i)] == Device::Gpu) return false;
  DAOP_CHECK_MSG(gpu_count(layer) < capacity(layer),
                 "GPU expert cache full for layer " << layer);
  device_[static_cast<std::size_t>(i)] = Device::Gpu;
  ++gpu_count_[static_cast<std::size_t>(layer)];
  return true;
}

bool Placement::move_to_cpu(int layer, int expert) {
  const int i = index(layer, expert);
  if (device_[static_cast<std::size_t>(i)] == Device::Cpu) return false;
  device_[static_cast<std::size_t>(i)] = Device::Cpu;
  --gpu_count_[static_cast<std::size_t>(layer)];
  return true;
}

void Placement::swap(int layer, int expert_in, int expert_out) {
  DAOP_CHECK_MSG(device(layer, expert_out) == Device::Gpu,
                 "swap-out expert not on GPU");
  DAOP_CHECK_MSG(device(layer, expert_in) == Device::Cpu,
                 "swap-in expert not on CPU");
  move_to_cpu(layer, expert_out);
  move_to_gpu(layer, expert_in);
}

std::vector<int> Placement::gpu_experts(int layer) const {
  std::vector<int> out;
  for (int e = 0; e < n_experts_; ++e) {
    if (on_gpu(layer, e)) out.push_back(e);
  }
  return out;
}

std::vector<int> Placement::cpu_experts(int layer) const {
  std::vector<int> out;
  for (int e = 0; e < n_experts_; ++e) {
    if (!on_gpu(layer, e)) out.push_back(e);
  }
  return out;
}

double Placement::ecr() const {
  return static_cast<double>(total_gpu_count()) /
         (static_cast<double>(n_layers_) * n_experts_);
}

int total_slots_for_ecr(int n_layers, int n_experts, double ecr) {
  DAOP_CHECK_GE(ecr, 0.0);
  DAOP_CHECK_LE(ecr, 1.0);
  return static_cast<int>(
      std::lround(ecr * static_cast<double>(n_layers) * n_experts));
}

Placement init_placement_calibrated(
    int n_layers, int n_experts, double ecr,
    const std::vector<std::vector<double>>& calib_counts) {
  DAOP_CHECK_EQ(static_cast<int>(calib_counts.size()), n_layers);
  Placement p(n_layers, n_experts);
  const int total_slots = total_slots_for_ecr(n_layers, n_experts, ecr);
  const int per_layer = total_slots / n_layers;
  int remainder = total_slots % n_layers;

  // Per-layer fill: top `per_layer` experts by calibrated activation.
  for (int l = 0; l < n_layers; ++l) {
    const auto& counts = calib_counts[static_cast<std::size_t>(l)];
    DAOP_CHECK_EQ(static_cast<int>(counts.size()), n_experts);
    std::vector<int> order(static_cast<std::size_t>(n_experts));
    for (int e = 0; e < n_experts; ++e) order[static_cast<std::size_t>(e)] = e;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return counts[static_cast<std::size_t>(a)] >
             counts[static_cast<std::size_t>(b)];
    });
    p.set_capacity(l, per_layer);
    for (int i = 0; i < per_layer; ++i) {
      p.move_to_gpu(l, order[static_cast<std::size_t>(i)]);
    }
  }

  // Remainder: globally most-activated experts not yet cached get one extra
  // slot each (their layer's capacity grows by one).
  if (remainder > 0) {
    struct Cand {
      double count;
      int layer;
      int expert;
    };
    std::vector<Cand> cands;
    for (int l = 0; l < n_layers; ++l) {
      for (int e = 0; e < n_experts; ++e) {
        if (!p.on_gpu(l, e)) {
          cands.push_back({calib_counts[static_cast<std::size_t>(l)]
                                       [static_cast<std::size_t>(e)],
                           l, e});
        }
      }
    }
    std::stable_sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      return a.count > b.count;
    });
    for (const Cand& c : cands) {
      if (remainder == 0) break;
      if (p.capacity(c.layer) >= p.n_experts()) continue;
      p.set_capacity(c.layer, p.capacity(c.layer) + 1);
      p.move_to_gpu(c.layer, c.expert);
      --remainder;
    }
  }
  return p;
}

Placement init_placement_global_greedy(
    int n_layers, int n_experts, double ecr,
    const std::vector<std::vector<double>>& calib_counts) {
  DAOP_CHECK_EQ(static_cast<int>(calib_counts.size()), n_layers);
  Placement p(n_layers, n_experts);
  const int total_slots = total_slots_for_ecr(n_layers, n_experts, ecr);

  struct Cand {
    double count;
    int layer;
    int expert;
  };
  std::vector<Cand> cands;
  cands.reserve(static_cast<std::size_t>(n_layers) * n_experts);
  for (int l = 0; l < n_layers; ++l) {
    DAOP_CHECK_EQ(static_cast<int>(calib_counts[static_cast<std::size_t>(l)].size()),
                  n_experts);
    for (int e = 0; e < n_experts; ++e) {
      cands.push_back(
          {calib_counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)],
           l, e});
    }
  }
  std::stable_sort(cands.begin(), cands.end(),
                   [](const Cand& a, const Cand& b) { return a.count > b.count; });
  for (int i = 0; i < total_slots; ++i) {
    const Cand& c = cands[static_cast<std::size_t>(i)];
    p.set_capacity(c.layer, p.capacity(c.layer) + 1);
    p.move_to_gpu(c.layer, c.expert);
  }
  return p;
}

}  // namespace daop::cache
