// Shared-placement arbitration for multi-session serving.
//
// Under continuous batching, every in-flight session schedules against ONE
// device placement — the expert cache is a device resource, not a
// per-request one. The PlacementArbiter owns that shared Placement and adds
// the two pieces of state individual sessions cannot see:
//
//  - reference-counted pins: a session pins the GPU experts it actively
//    uses, and a swap/eviction requested by one session is REFUSED when its
//    victim is pinned by another — one request's migration can never evict
//    an expert a concurrent request is computing with. Refusals are counted
//    (EngineCounters::pin_refusals) and the requester degrades exactly as it
//    would for any failed migration.
//  - weight-arrival gates: when a session's transfer lands an expert on the
//    GPU, the arrival time is published so a DIFFERENT session scheduling
//    the same expert waits for the weights instead of using them before
//    they exist.
//
// The arbiter is deterministic and single-threaded like the rest of the
// simulation; "concurrent" sessions are interleaved by the scheduler, never
// by threads.
#pragma once

#include <unordered_map>
#include <vector>

#include "cache/placement.hpp"

namespace daop::cache {

class PlacementArbiter {
 public:
  explicit PlacementArbiter(Placement initial);

  Placement& placement() { return placement_; }
  const Placement& placement() const { return placement_; }

  /// Pins (layer, expert) for `session`. Pins nest: each pin() needs a
  /// matching unpin() — or a final unpin_session() — to release.
  void pin(int layer, int expert, long long session);
  void unpin(int layer, int expert, long long session);
  /// Drops every pin `session` holds (called when a session closes).
  void unpin_session(long long session);

  /// Total pin count on (layer, expert) across all sessions.
  int pin_count(int layer, int expert) const;
  /// Per-expert introspection: total pin count on `expert` summed across
  /// every layer and session (an expert id names one weight set per layer).
  int pin_count(int expert) const;
  /// The sessions currently pinning (layer, expert), ascending by id —
  /// refusal diagnostics use this to name the contending sessions.
  std::vector<long long> pinning_sessions(int layer, int expert) const;
  /// Total pin count across every (layer, expert) and every session — the
  /// scheduler DAOP_CHECKs this returns to zero at shutdown (no session may
  /// leak pins through preemption or close).
  int total_pin_count() const;
  /// True when any session other than `session` pins (layer, expert).
  bool pinned_by_other(int layer, int expert, long long session) const;

  /// Swap arbitration: performs `expert_out` -> `expert_in` on `layer` and
  /// returns true, unless `expert_out` is pinned by a session other than
  /// the requester — then the placement is untouched and false is returned
  /// (the caller counts a pin refusal and degrades like any failed
  /// migration). A session's own pins never block its request.
  bool try_swap(int layer, int expert_in, int expert_out, long long session);

  /// Eviction arbitration with the same pin rule as try_swap.
  bool try_evict(int layer, int expert, long long session);

  /// Weight-arrival gate: experts become usable only once their transfer
  /// lands, and that holds across sessions. set_weight_ready publishes (and
  /// only ever advances) the arrival time; weight_ready reads it (0 when
  /// the weights were never in flight).
  double weight_ready(int layer, int expert) const;
  void set_weight_ready(int layer, int expert, double t);

 private:
  std::size_t idx(int layer, int expert) const;

  Placement placement_;
  /// Per-(layer, expert) pin refcount keyed by session id.
  std::vector<std::unordered_map<long long, int>> pins_;
  std::vector<double> weight_ready_;
};

}  // namespace daop::cache
