#include "cache/expert_cache.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "cache/arbiter.hpp"
#include "common/check.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace daop::cache {

const char* cache_policy_name(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kFrozen:
      return "frozen";
    case CachePolicy::kLru:
      return "lru";
    case CachePolicy::kLfu:
      return "lfu";
    case CachePolicy::kActivationWeighted:
      return "activation-weighted";
    case CachePolicy::kReusePredictor:
      return "reuse-predictor";
  }
  DAOP_CHECK_MSG(false, "unreachable cache policy");
  return "";
}

CachePolicy parse_cache_policy(const std::string& name) {
  if (name == "frozen") return CachePolicy::kFrozen;
  if (name == "lru") return CachePolicy::kLru;
  if (name == "lfu") return CachePolicy::kLfu;
  if (name == "activation-weighted") return CachePolicy::kActivationWeighted;
  if (name == "reuse-predictor") return CachePolicy::kReusePredictor;
  DAOP_CHECK_MSG(false,
                 "unknown cache policy '"
                     << name
                     << "' (valid: frozen, lru, lfu, activation-weighted, "
                        "reuse-predictor)");
  return CachePolicy::kFrozen;
}

std::vector<CachePolicy> all_cache_policies() {
  return {CachePolicy::kFrozen, CachePolicy::kLru, CachePolicy::kLfu,
          CachePolicy::kActivationWeighted, CachePolicy::kReusePredictor};
}

std::vector<CachePolicy> dynamic_cache_policies() {
  return {CachePolicy::kLru, CachePolicy::kLfu,
          CachePolicy::kActivationWeighted, CachePolicy::kReusePredictor};
}

void ExpertCacheOptions::validate() const {
  DAOP_CHECK_GE(realloc_interval, 1);
  DAOP_CHECK_GE(max_swaps_per_step, 1);
  DAOP_CHECK_MSG(decay > 0.0 && decay <= 1.0,
                 "cache EWMA decay must be in (0, 1], got " << decay);
  DAOP_CHECK_GE(hysteresis, 0.0);
  DAOP_CHECK_GE(max_migration_retries, 0);
  DAOP_CHECK_GE(migration_deadline_factor, 0.0);
}

std::string CacheRefusal::describe() const {
  std::ostringstream os;
  os << "cache swap refused at t=" << time << "s: layer " << layer
     << " expert " << expert_in << " -> " << expert_out
     << " (victim pinned by session";
  if (holders.size() != 1) os << "s";
  for (std::size_t i = 0; i < holders.size(); ++i) {
    os << (i == 0 ? " " : ", ") << holders[i];
  }
  os << "; requested by session " << session << ")";
  return os.str();
}

ExpertCache::ExpertCache(const ExpertCacheOptions& options, int n_layers,
                         int n_experts)
    : opt_(options), n_layers_(n_layers), n_experts_(n_experts) {
  opt_.validate();
  DAOP_CHECK_MSG(opt_.enabled(),
                 "policy 'frozen' means no ExpertCache: construct none so "
                 "frozen runs stay byte-identical to the goldens");
  DAOP_CHECK_GE(n_layers, 1);
  DAOP_CHECK_GE(n_experts, 1);
  const std::size_t n =
      static_cast<std::size_t>(n_layers) * static_cast<std::size_t>(n_experts);
  last_use_.assign(n, 0.0);
  freq_.assign(n, 0.0);
  ewma_.assign(n, 0.0);
  prev_freq_.assign(n, 0.0);
}

std::size_t ExpertCache::idx(int layer, int expert) const {
  DAOP_CHECK_GE(layer, 0);
  DAOP_CHECK_LT(layer, n_layers_);
  DAOP_CHECK_GE(expert, 0);
  DAOP_CHECK_LT(expert, n_experts_);
  return static_cast<std::size_t>(layer) * static_cast<std::size_t>(n_experts_) +
         static_cast<std::size_t>(expert);
}

void ExpertCache::note_session_open(long long session,
                                    const data::SequenceTrace& trace) {
  DAOP_CHECK_EQ(trace.n_layers(), n_layers_);
  DAOP_CHECK_EQ(trace.n_experts, n_experts_);
  std::vector<double> sig(last_use_.size(), 0.0);
  // Seed the reuse signature with the prefill activation pattern: DAOP's own
  // observation (Table 2) is that prefill routing predicts decode routing
  // for the same sequence, which is exactly MoE-Infinity's sequence-level
  // reuse prior.
  const auto counts = trace.activation_counts(data::Phase::Prefill);
  for (int l = 0; l < n_layers_; ++l) {
    for (int e = 0; e < n_experts_; ++e) {
      sig[idx(l, e)] = counts[static_cast<std::size_t>(l)]
                             [static_cast<std::size_t>(e)];
    }
  }
  live_[session] = std::move(sig);
}

void ExpertCache::note_session_close(long long session) {
  live_.erase(session);
}

void ExpertCache::note_use(int layer, int expert, long long session,
                           double t) {
  const std::size_t i = idx(layer, expert);
  last_use_[i] = std::max(last_use_[i], t);
  freq_[i] += 1.0;
  auto it = live_.find(session);
  if (it != live_.end()) it->second[i] += 1.0;
}

double ExpertCache::score(int layer, int expert) const {
  const std::size_t i = idx(layer, expert);
  switch (opt_.policy) {
    case CachePolicy::kFrozen:
      return 0.0;
    case CachePolicy::kLru:
      return last_use_[i];
    case CachePolicy::kLfu:
      return freq_[i];
    case CachePolicy::kActivationWeighted:
      return ewma_[i];
    case CachePolicy::kReusePredictor: {
      // Aggregate demand across all live sessions, summed in ascending
      // session-id order (ordered map) for bit-stable float accumulation.
      double s = 0.0;
      for (const auto& [id, sig] : live_) s += sig[i];
      return s;
    }
  }
  DAOP_CHECK_MSG(false, "unreachable cache policy");
  return 0.0;
}

std::vector<PlannedSwap> ExpertCache::plan(const Placement& placement,
                                           const PlacementArbiter* arbiter,
                                           long long session) {
  DAOP_CHECK_EQ(placement.n_layers(), n_layers_);
  DAOP_CHECK_EQ(placement.n_experts(), n_experts_);
  ++plans_;
  if (opt_.policy == CachePolicy::kActivationWeighted) {
    // Fold the activations since the previous scan into the EWMA.
    for (std::size_t i = 0; i < ewma_.size(); ++i) {
      ewma_[i] = ewma_[i] * opt_.decay + (freq_[i] - prev_freq_[i]);
      prev_freq_[i] = freq_[i];
    }
  }
  std::vector<PlannedSwap> out;
  int budget = opt_.max_swaps_per_step;
  for (int l = 0; l < n_layers_ && budget > 0; ++l) {
    // Potential victims: GPU residents not pinned by another session
    // (pinned working sets are inviolable — their demand is live by
    // definition). Candidates: every CPU resident.
    std::vector<std::pair<double, int>> victims;
    std::vector<std::pair<double, int>> candidates;
    double lo = 0.0, hi = 0.0;
    for (int e = 0; e < n_experts_; ++e) {
      const double s = score(l, e);
      if (e == 0) lo = hi = s;
      lo = std::min(lo, s);
      hi = std::max(hi, s);
      if (placement.on_gpu(l, e)) {
        if (arbiter != nullptr && arbiter->pinned_by_other(l, e, session)) {
          continue;
        }
        victims.emplace_back(s, e);
      } else {
        candidates.emplace_back(s, e);
      }
    }
    // Hysteresis is a fraction of this layer's score spread, so the margin
    // is meaningful whether scores are timestamps (lru) or counts (lfu).
    const double margin = opt_.hysteresis * (hi - lo);
    // Weakest victims first, strongest candidates first; ties break on
    // lower expert id so plans are deterministic.
    std::sort(victims.begin(), victims.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first < b.first
                                          : a.second < b.second;
              });
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
              });
    const std::size_t pairs = std::min(victims.size(), candidates.size());
    for (std::size_t k = 0; k < pairs && budget > 0; ++k) {
      // Pairs are matched best-candidate-to-weakest-victim, so the first
      // failing pair ends the layer.
      if (candidates[k].first <= victims[k].first + margin) break;
      out.push_back({l, candidates[k].second, victims[k].second});
      --budget;
    }
  }
  return out;
}

void ExpertCache::commit(const PlannedSwap& swap, long long session,
                         double time, int victim_other_pins,
                         const Placement& placement) {
  const int gpu_after = placement.gpu_count(swap.layer);
  const int cap = placement.capacity(swap.layer);
  CacheEvent evict;
  evict.kind = CacheEvent::Kind::kEvict;
  evict.layer = swap.layer;
  evict.expert = swap.expert_out;
  evict.peer = swap.expert_in;
  evict.session = session;
  evict.time = time;
  evict.victim_other_pins = victim_other_pins;
  evict.gpu_count_after = gpu_after;
  evict.capacity = cap;
  ledger_.push_back(evict);
  ++evictions_;

  CacheEvent fill = evict;
  fill.kind = CacheEvent::Kind::kFill;
  fill.expert = swap.expert_in;
  fill.peer = swap.expert_out;
  ledger_.push_back(fill);
  ++fills_;
}

void ExpertCache::record_refusal(const PlannedSwap& swap, long long session,
                                 double time,
                                 std::vector<long long> holders) {
  CacheRefusal r;
  r.layer = swap.layer;
  r.expert_in = swap.expert_in;
  r.expert_out = swap.expert_out;
  r.session = session;
  r.time = time;
  r.holders = std::move(holders);
  std::sort(r.holders.begin(), r.holders.end());
  refusals_.push_back(std::move(r));
}

void ExpertCache::record_abort(const PlannedSwap& swap, long long session,
                               double time) {
  (void)swap;
  (void)session;
  (void)time;
  ++aborts_;
}

std::string ExpertCache::report() const {
  std::ostringstream os;
  os << "Dynamic expert cache report — policy "
     << cache_policy_name(opt_.policy) << "\n\n";
  TextTable totals({"plans", "fills", "evictions", "refusals", "aborts",
                    "live sessions"});
  totals.add_row({std::to_string(plans_), std::to_string(fills_),
                  std::to_string(evictions_),
                  std::to_string(refusals_.size()), std::to_string(aborts_),
                  std::to_string(live_.size())});
  os << totals.render();

  // Attribution: where did the migrated bytes go? Count fills per
  // (layer, expert) and show the hottest targets with their current score.
  std::map<std::pair<int, int>, long long> fill_counts;
  for (const CacheEvent& ev : ledger_) {
    if (ev.kind == CacheEvent::Kind::kFill) {
      ++fill_counts[{ev.layer, ev.expert}];
    }
  }
  if (!fill_counts.empty()) {
    std::vector<std::pair<std::pair<int, int>, long long>> top(
        fill_counts.begin(), fill_counts.end());
    std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    if (top.size() > 8) top.resize(8);
    TextTable t({"layer", "expert", "fills", "demand score"});
    for (const auto& [key, n] : top) {
      t.add_row({std::to_string(key.first), std::to_string(key.second),
                 std::to_string(n), fmt_f(score(key.first, key.second), 3)});
    }
    os << "\nmost-promoted experts:\n" << t.render();
  }
  if (!refusals_.empty()) {
    os << "\nrefusals (pinned working sets stayed inviolable):\n";
    const std::size_t n = std::min<std::size_t>(refusals_.size(), 8);
    for (std::size_t i = 0; i < n; ++i) {
      os << "  " << refusals_[i].describe() << "\n";
    }
    if (refusals_.size() > n) {
      os << "  ... and " << refusals_.size() - n << " more\n";
    }
  }
  return os.str();
}

}  // namespace daop::cache
