// chatbot_latency — serving-scenario example.
//
// Simulates an interactive chat session (ShareGPT-like request mix: short
// prompts, medium generations) on the paper's A6000 + i9 edge platform and
// reports per-request latency metrics that matter to a chatbot deployment:
// time-to-first-token (prefill), per-token decode latency, and request
// completion time, for each engine.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "cache/calibration.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "data/trace_generator.hpp"
#include "eval/speed.hpp"
#include "model/op_costs.hpp"

int main() {
  using namespace daop;

  const model::ModelConfig cfg = model::mixtral_8x7b();
  const sim::PlatformSpec platform = sim::a6000_i9_platform();
  const sim::CostModel cm(platform);
  const model::OpCosts costs(cfg, cm);
  const double ecr = 0.469;

  // Request mix: prompt 64-320 tokens, generation 48-256 tokens.
  const int n_requests = 12;
  Rng rng(2026);
  struct Request {
    int prompt, gen;
  };
  std::vector<Request> requests;
  for (int i = 0; i < n_requests; ++i) {
    requests.push_back({rng.uniform_int(64, 320), rng.uniform_int(48, 256)});
  }

  const data::TraceGenerator calib_gen(data::sharegpt_calibration(),
                                       cfg.n_layers, cfg.n_experts, cfg.top_k,
                                       0xC0FFEE);
  const auto calib = cache::calibrate_activation_counts(calib_gen, 32);
  const auto placement = cache::init_placement_calibrated(
      cfg.n_layers, cfg.n_experts, ecr, calib);
  const data::TraceGenerator gen(data::sharegpt_calibration(), cfg.n_layers,
                                 cfg.n_experts, cfg.top_k, 515);

  std::printf(
      "chatbot serving scenario — %s, ECR %s, %d chat requests\n"
      "(prompts 64-320 tokens, generations 48-256 tokens)\n\n",
      cfg.name.c_str(), fmt_pct(ecr).c_str(), n_requests);

  TextTable t({"engine", "TTFT p50 (ms)", "TTFT p95 (ms)",
               "ms/token p50", "tok/s (agg)", "session (s)"});
  for (auto kind :
       {eval::EngineKind::MixtralOffloading, eval::EngineKind::Fiddler,
        eval::EngineKind::Daop}) {
    auto engine = eval::make_engine(kind, costs);
    std::vector<double> ttft;
    std::vector<double> per_token;
    double total_time = 0.0;
    long long total_tokens = 0;
    for (int i = 0; i < n_requests; ++i) {
      const auto tr = gen.generate(i, requests[static_cast<std::size_t>(i)].prompt,
                                   requests[static_cast<std::size_t>(i)].gen);
      const auto r = engine->run(tr, placement);
      ttft.push_back(r.prefill_s * 1e3);
      per_token.push_back(r.decode_s / r.generated_tokens * 1e3);
      total_time += r.total_s;
      total_tokens += r.generated_tokens;
    }
    std::sort(ttft.begin(), ttft.end());
    std::sort(per_token.begin(), per_token.end());
    auto pct = [](const std::vector<double>& v, double p) {
      const auto i = static_cast<std::size_t>(p * (v.size() - 1));
      return v[i];
    };
    t.add_row({engine->name(), fmt_f(pct(ttft, 0.5), 0),
               fmt_f(pct(ttft, 0.95), 0), fmt_f(pct(per_token, 0.5), 1),
               fmt_f(total_tokens / total_time, 2), fmt_f(total_time, 1)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "DAOP pays a slightly higher time-to-first-token (Algorithm 1 swap\n"
      "migrations ride the PCIe link during prefill) and wins it back many\n"
      "times over in per-token decode latency.\n");
  return 0;
}
