// quickstart — the smallest end-to-end tour of the DAOP library.
//
// Part 1 (functional plane): builds a reduced-scale Mixtral-style MoE model
// with real numerics, generates text with the exact official decoder and
// with the DAOP executor at a small expert cache, and compares outputs.
//
// Part 2 (performance plane): simulates one sequence of Mixtral 8x7B on the
// paper's A6000 + i9 platform under Fiddler and DAOP and reports tokens/s.
#include <cstdio>
#include <fstream>

#include "cache/calibration.hpp"
#include "cache/placement.hpp"
#include "common/cli.hpp"
#include "common/strings.hpp"
#include "core/daop_engine.hpp"
#include "core/daop_executor.hpp"
#include "data/gate_bias.hpp"
#include "data/trace_generator.hpp"
#include "eval/accuracy.hpp"
#include "eval/speed.hpp"
#include "model/functional_model.hpp"
#include "obs/metrics.hpp"

int main(int argc, char** argv) {
  using namespace daop;
  const FlagParser flags(argc, argv);
  const std::string metrics_out = flags.get("metrics-out", "");
  const std::string metrics_format = flags.get("metrics-format", "prom");

  // ---------------------------------------------------------------- Part 1
  std::printf("== Part 1: functional plane (real numerics, tiny model) ==\n");
  const model::ModelConfig tiny = model::tiny_mixtral();
  const model::FunctionalModel fm(tiny, /*seed=*/1);

  // Condition the router like a C4-style sequence.
  const int prompt_len = 16;
  const int gen_len = 24;
  const auto bias = data::make_gate_bias(data::c4(), tiny.n_layers,
                                         tiny.n_experts, /*seed=*/3,
                                         /*seq=*/0, prompt_len,
                                         prompt_len + gen_len + 1);
  const auto prompt = data::make_prompt(tiny.vocab_size, prompt_len, 3, 0);

  const model::OfficialDecoder official(fm);
  const auto ref = official.generate(prompt, gen_len, bias);

  // DAOP with only 37.5% of experts on the "GPU".
  const auto calib = eval::calibrate_functional_counts(
      fm, data::sharegpt_calibration(), 4, prompt_len, gen_len, 11);
  const auto placement = cache::init_placement_calibrated(
      tiny.n_layers, tiny.n_experts, 0.375, calib);

  core::DaopFunctionalExecutor daop(fm);
  core::FunctionalRunStats stats;
  const auto got = daop.generate(prompt, gen_len, placement, bias, &stats);

  int agree = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (ref[i] == got[i]) ++agree;
  }
  std::printf("official : ");
  for (int t : ref) std::printf("%d ", t);
  std::printf("\nDAOP     : ");
  for (int t : got) std::printf("%d ", t);
  std::printf("\ntoken agreement @ECR 37.5%%: %d/%zu\n", agree, ref.size());
  std::printf(
      "decode expert uses: %lld (exact %lld, pre-calculated %lld, "
      "degraded %lld)\n\n",
      stats.decode_expert_uses, stats.exact_execs, stats.stale_input_execs,
      stats.degradations);

  // ---------------------------------------------------------------- Part 2
  std::printf("== Part 2: performance plane (Mixtral 8x7B on A6000 + i9) ==\n");
  eval::SpeedEvalOptions opt;
  opt.n_seqs = 2;
  opt.prompt_len = 128;
  opt.gen_len = 128;
  opt.ecr = 0.469;
  obs::MetricsRegistry reg;
  opt.metrics = &reg;
  for (auto kind : {eval::EngineKind::Fiddler, eval::EngineKind::Daop}) {
    const auto r = eval::run_speed_eval(kind, model::mixtral_8x7b(),
                                        sim::a6000_i9_platform(), data::c4(),
                                        opt);
    std::printf("%-14s %s tokens/s  (%s tokens/kJ)\n",
                engine_kind_name(kind), fmt_f(r.tokens_per_s, 2).c_str(),
                fmt_f(r.tokens_per_kj, 2).c_str());
  }
  std::printf("\nSee bench/ for the full reproduction of every paper table "
              "and figure.\n");
  if (!metrics_out.empty()) {
    std::ofstream f(metrics_out);
    if (f) {
      f << (metrics_format == "json" ? reg.to_json() : reg.to_prometheus());
    }
    if (!f) {
      std::fprintf(stderr, "failed to write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("metrics written to %s (%zu families)\n", metrics_out.c_str(),
                reg.family_count());
  }
  return 0;
}
