// trace_explorer — inspects the routing statistics of a workload preset and
// the cache behaviour they induce (the paper's observations ①-③ in one
// place). Useful both as a user-facing diagnostic and for calibrating
// workload presets against published statistics.
//
// Usage: trace_explorer [dataset] [n_seqs]
//   dataset in {c4, math, gsm8k, triviaqa, alpaca, bbh, truthfulqa}
#include <cstdio>
#include <cstring>
#include <string>

#include "cache/calibration.hpp"
#include "cache/placement.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/allocation.hpp"
#include "data/trace_generator.hpp"
#include "eval/similarity.hpp"
#include "model/config.hpp"

namespace {

using namespace daop;

data::WorkloadSpec pick(const std::string& name) {
  for (const auto& w : data::all_eval_workloads()) {
    std::string lower = w.name;
    for (auto& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower.find(name) != std::string::npos) return w;
  }
  std::fprintf(stderr, "unknown dataset '%s', using C4\n", name.c_str());
  return data::c4();
}

/// Decode hit rate of a placement over a trace: fraction of (token, layer,
/// selected expert) hits on the GPU.
double decode_hit_rate(const data::SequenceTrace& tr,
                       const cache::Placement& p) {
  long long hits = 0;
  long long total = 0;
  for (int l = 0; l < tr.n_layers(); ++l) {
    for (int t = 0; t < tr.gen_len; ++t) {
      for (int e : tr.selected(data::Phase::Decode, l, t)) {
        ++total;
        if (p.on_gpu(l, e)) ++hits;
      }
    }
  }
  return total > 0 ? static_cast<double>(hits) / total : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const data::WorkloadSpec spec = pick(argc > 1 ? argv[1] : "c4");
  const int n_seqs = argc > 2 ? std::atoi(argv[2]) : 64;

  const model::ModelConfig cfg = model::mixtral_8x7b();
  const data::TraceGenerator gen(spec, cfg.n_layers, cfg.n_experts, cfg.top_k,
                                 4242);

  std::printf("== workload '%s' on %s, %d sequences ==\n\n", spec.name.c_str(),
              cfg.name.c_str(), n_seqs);

  // Observation ②: prefill/decode similarity (Table II).
  std::printf("prefill/decode activation similarity (Eq. 1): %s\n",
              fmt_pct(eval::avg_prefill_decode_similarity(gen, n_seqs)).c_str());

  // Observation ③: gate-ahead prediction accuracy (Fig. 5).
  std::printf("one-layer-ahead prediction accuracy (avg):    %s\n",
              fmt_pct(eval::avg_prediction_accuracy(gen, n_seqs)).c_str());

  // §VI-B drift.
  std::printf("decode window (15-token) similarity:          %s\n\n",
              fmt_pct(eval::avg_decode_window_similarity(gen, n_seqs, 15)).c_str());

  // Cache behaviour at the paper's full-memory ECR.
  const double ecr = 0.469;
  const data::TraceGenerator calib_gen(data::sharegpt_calibration(),
                                       cfg.n_layers, cfg.n_experts, cfg.top_k,
                                       777);
  const auto calib = cache::calibrate_activation_counts(calib_gen, 32);
  const cache::Placement static_placement = cache::init_placement_calibrated(
      cfg.n_layers, cfg.n_experts, ecr, calib);

  double static_hit = 0.0;
  double daop_hit = 0.0;
  double swaps_per_layer = 0.0;
  for (int s = 0; s < n_seqs; ++s) {
    const auto tr = gen.generate(s);
    static_hit += decode_hit_rate(tr, static_placement);

    cache::Placement adjusted = static_placement;
    const auto counts = tr.activation_counts(data::Phase::Prefill);
    int swaps = 0;
    for (int l = 0; l < cfg.n_layers; ++l) {
      const auto decisions = core::sequence_specific_swaps(
          counts[static_cast<std::size_t>(l)], adjusted, l, 1.05);
      core::apply_swaps(adjusted, l, decisions);
      swaps += static_cast<int>(decisions.size());
    }
    daop_hit += decode_hit_rate(tr, adjusted);
    swaps_per_layer += static_cast<double>(swaps) / cfg.n_layers;
  }
  std::printf("decode GPU hit rate @ECR %s\n", fmt_pct(ecr).c_str());
  std::printf("  calibrated static placement (Fiddler):     %s\n",
              fmt_pct(static_hit / n_seqs).c_str());
  std::printf("  after Algorithm 1 swaps (DAOP):            %s\n",
              fmt_pct(daop_hit / n_seqs).c_str());
  std::printf("  Algorithm 1 swaps per layer:               %.2f\n\n",
              swaps_per_layer / n_seqs);

  // Observation ①: dataset marginals vs per-sequence skew.
  const auto marg = eval::marginal_activation(gen, n_seqs);
  double mx = 0.0;
  double mn = 1.0;
  for (const auto& row : marg) {
    for (double p : row) {
      mx = std::max(mx, p);
      mn = std::min(mn, p);
    }
  }
  std::printf("dataset-level activation probability range: %.4f .. %.4f\n",
              mn, mx);
  std::printf("(uniform = %.4f; near-uniform marginals + skewed sequences\n"
              " = observation ①)\n",
              1.0 / cfg.n_experts);
  return 0;
}
