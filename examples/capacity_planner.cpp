// capacity_planner — sizes a MoE deployment across hardware platforms.
//
// For each platform it derives the maximum Expert Cache Ratio that fits GPU
// memory, checks the paper's §VI-A applicability assumptions
//   1) GPU memory cannot hold all experts,
//   2) the GPU executes experts faster than the CPU,
//   3) migrating an expert costs more than executing it on the CPU,
// and then reports the expected tokens/s for Fiddler and DAOP at that ECR —
// i.e. what a practitioner would gain by deploying DAOP on that box.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "eval/speed.hpp"
#include "model/op_costs.hpp"

int main() {
  using namespace daop;

  const std::vector<sim::PlatformSpec> platforms = {
      sim::a6000_i9_platform(), sim::a100_xeon_platform(),
      sim::rtx4090_desktop_platform(), sim::laptop_platform()};

  for (const model::ModelConfig& cfg :
       {model::mixtral_8x7b(), model::phi35_moe()}) {
    std::printf("== %s (%.1fB params, %s per expert) ==\n", cfg.name.c_str(),
                cfg.total_params() / 1e9,
                fmt_bytes(cfg.expert_bytes()).c_str());
    TextTable t({"platform", "max ECR", "A1", "A2", "A3", "Fiddler tok/s",
                 "DAOP tok/s", "gain"});
    for (const auto& platform : platforms) {
      const double ecr = model::max_expert_cache_ratio(cfg, platform);
      const sim::CostModel cm(platform);
      const model::OpCosts costs(cfg, cm);

      const bool a1 = ecr < 1.0;  // GPU memory limited
      const bool a2 = costs.expert_gpu() < costs.expert_cpu();
      const bool a3 = costs.expert_migration() > costs.expert_cpu();

      std::string fiddler = "-";
      std::string daop = "-";
      std::string gain = "-";
      if (a1) {
        eval::SpeedEvalOptions opt;
        opt.n_seqs = 2;
        opt.prompt_len = 128;
        opt.gen_len = 128;
        opt.ecr = ecr;
        const auto rf = eval::run_speed_eval(eval::EngineKind::Fiddler, cfg,
                                             platform, data::c4(), opt);
        const auto rd = eval::run_speed_eval(eval::EngineKind::Daop, cfg,
                                             platform, data::c4(), opt);
        fiddler = fmt_f(rf.tokens_per_s, 2);
        daop = fmt_f(rd.tokens_per_s, 2);
        gain = "+" + fmt_pct(rd.tokens_per_s / rf.tokens_per_s - 1.0);
      } else {
        fiddler = "fits on GPU";
      }
      t.add_row({platform.gpu.name, fmt_pct(ecr), a1 ? "yes" : "no",
                 a2 ? "yes" : "no", a3 ? "yes" : "no", fiddler, daop, gain});
    }
    std::printf("%s\n", t.render().c_str());
  }
  std::printf(
      "A1: GPU memory limited; A2: GPU faster per expert; A3: migration\n"
      "costs more than CPU execution (paper §VI-A). DAOP applies when all\n"
      "three hold — which they do on every commodity platform above.\n");
  return 0;
}
