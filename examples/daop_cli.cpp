// daop_cli — command-line driver over both execution planes.
//
// Commands:
//   speed     simulate an engine on a platform (tokens/s, energy, counters)
//   serve     FCFS serving simulation under a Poisson request load
//   accuracy  functional-plane fidelity of DAOP vs the official model
//   observe   routing statistics of a workload (observations ①-③)
//   timeline  decode-timeline export (ASCII gantt + Chrome trace JSON)
//   dump      synthesize a routing trace and write it in daop-trace format
//   replay    run a saved daop-trace file (possibly dumped from a REAL
//             model's router) through any engine
//
// Examples:
//   daop_cli speed --engine daop --model mixtral --ecr 0.469 --in 256 --out 256
//   daop_cli serve --engine fiddler --rate 0.02 --requests 24
//   daop_cli accuracy --dataset gsm8k --ecr 0.25 --episodes 16
//   daop_cli timeline --engine daop --out-json /tmp/daop.json
//   daop_cli dump --dataset c4 --seq 0 --path /tmp/seq0.trace
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cache/calibration.hpp"
#include "cache/expert_cache.hpp"
#include "cluster/serving.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "data/trace_io.hpp"
#include "engines/run_metrics.hpp"
#include "eval/accuracy.hpp"
#include "eval/serving.hpp"
#include "eval/similarity.hpp"
#include "eval/speed.hpp"
#include "model/config.hpp"
#include "obs/alerting.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/span_tracer.hpp"
#include "obs/timeseries.hpp"
#include "sim/fault_model.hpp"
#include "sim/trace_export.hpp"

namespace {

using namespace daop;

int usage() {
  std::printf(
      "usage: daop_cli <command> [--flags]\n"
      "commands: speed | compare | serve | accuracy | observe | timeline |\n"
      "          dump | replay\n"
      "common flags:\n"
      "  --engine   ondemand|deepspeed|mixtral-offloading|pregated|edgemoe|\n"
      "             moe-infinity|fiddler|daop           (default daop)\n"
      "  --model    mixtral|phi                         (default mixtral)\n"
      "  --platform a6000|a100|4090|laptop              (default a6000)\n"
      "  --dataset  c4|math|gsm8k|triviaqa|alpaca|bbh|truthfulqa\n"
      "  --ecr      expert cache ratio                  (default 0.469)\n"
      "  --in/--out prompt / generation lengths         (default 256/256)\n"
      "  --seqs     sequences to average over           (default 4)\n"
      "  --seed     RNG seed                            (default 7)\n"
      "DAOP knobs: --no-alloc --no-precalc --no-degrade --swap-threshold X\n"
      "            --quant-bits N --realloc-every N\n"
      "robustness: --migration-deadline X (abort swaps over X*transfer time)\n"
      "            --migration-retries N --stale-precalc X\n"
      "hazards:    --hazard none|pcie|cpu|thermal|expert-load|all\n"
      "            --hazard-intensity X in [0,1]       (default 0.5)\n"
      "serve only: --rate RPS --requests N --max-concurrent K (K>=2 enables\n"
      "            continuous batching) --timeout S --request-retries N\n"
      "            --retry-backoff S --slo-ttft S --slo-latency S\n"
      "            --in/--out fixed lengths --out-json PATH (request spans\n"
      "            + per-request outcome log)\n"
      "overload:   --admission fifo|lifo-shed|deadline-edf --queue-cap N\n"
      "            --deadline S (first-token budget; sheds hopeless\n"
      "            requests) --service-estimate S --preempt\n"
      "            --priority-every N --priority-deadline S (every Nth\n"
      "            request is deadline-critical) --degrade\n"
      "            --degrade-window S (hazard-adaptive degradation ladder)\n"
      "cluster:    --nodes N (N>=1 serves through an N-node fault-tolerant\n"
      "            cluster; --max-concurrent becomes the per-node bound)\n"
      "            --dispatch round-robin|least-loaded|expert-affinity\n"
      "            --health --health-interval S --health-eject K\n"
      "            --health-readmit M --health-slow S (probe cadence and\n"
      "            eject/readmit streaks) --failover-budget N\n"
      "            --failover-backoff S --hedge-ttft S (duplicate dispatch\n"
      "            over this projected TTFT) --crash-node I --crash-at S\n"
      "            (explicit chaos injection); --hazard node-crash|\n"
      "            node-brownout|link-degrade|cluster draws per-node faults\n"
      "recovery:   --ckpt-every N (checkpoint each session every N decode\n"
      "            steps) --ckpt-interval S (and/or every S simulated\n"
      "            seconds) --ckpt-keep G (generations retained, default 2)\n"
      "            enables crash-consistent checkpointing + warm restart on\n"
      "            failover; --hazard ckpt-torn|ckpt-corrupt|ckpt injects\n"
      "            checkpoint write faults\n"
      "cache:      --cache-policy frozen|lru|lfu|activation-weighted|\n"
      "            reuse-predictor (default frozen; dynamic policies\n"
      "            re-migrate experts during decode) --cache-interval N\n"
      "            (decode steps between replans) --cache-report PATH\n"
      "            (speed, serve)\n"
      "metrics:    --metrics-out PATH --metrics-format prom|json\n"
      "            (speed, compare, serve, serve --nodes N, timeline)\n"
      "profiling:  --profile-out PATH --profile-format json|text\n"
      "            critical-path attribution report (speed, compare,\n"
      "            serve, serve --nodes N, timeline)\n"
      "timeseries: --tseries-out PATH --tseries-format json|text\n"
      "            --tseries-window S (simulated seconds per window,\n"
      "            default 5) windowed daop-tseries/1 export with SLO\n"
      "            burn-rate alerts + correlated incidents (same five\n"
      "            modes; serve/serve --nodes stream per-decision windows,\n"
      "            batch modes export end-of-run totals)\n"
      "            --slo-rules SPEC|FILE (inline 'k=v,...;k=v,...' rules\n"
      "            or a rules file; default: stock TTFT/latency/shed SLOs)\n");
  return 2;
}

/// Writes the registry to --metrics-out when given (Prometheus text format
/// by default, JSON with --metrics-format json). `mode` must be registered
/// for the flag in cli_output_flag_matrix() — the single source of truth
/// that keeps output-flag support uniform across the report-producing
/// modes. Returns 0 on success or when no output was requested, 1 on I/O
/// failure.
int write_metrics(const FlagParser& flags, const char* mode,
                  const obs::MetricsRegistry& reg) {
  DAOP_CHECK_MSG(cli_output_flag_supported("metrics-out", mode),
                 "mode '" << mode << "' missing from the --metrics-out "
                          << "support matrix (common/cli.cpp)");
  const std::string path = flags.get("metrics-out", "");
  const std::string format = flags.get("metrics-format", "prom");
  if (path.empty()) return 0;
  DAOP_CHECK_MSG(format == "prom" || format == "json",
                 "unknown --metrics-format '" << format << "'");
  std::ofstream f(path);
  if (f) f << (format == "json" ? reg.to_json() : reg.to_prometheus());
  if (!f) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("metrics written to %s (%zu families, %s)\n", path.c_str(),
              reg.family_count(), format.c_str());
  return 0;
}

/// Writes the critical-path attribution report to --profile-out when given
/// (deterministic JSON by default, aligned text tables with
/// --profile-format text). Returns 0 on success or when no output was
/// requested, 1 on I/O failure.
int write_profile(const FlagParser& flags, const char* mode,
                  const obs::Profiler& prof) {
  DAOP_CHECK_MSG(cli_output_flag_supported("profile-out", mode),
                 "mode '" << mode << "' missing from the --profile-out "
                          << "support matrix (common/cli.cpp)");
  const std::string path = flags.get("profile-out", "");
  const std::string format = flags.get("profile-format", "json");
  if (path.empty()) return 0;
  DAOP_CHECK_MSG(format == "json" || format == "text",
                 "unknown --profile-format '" << format << "'");
  std::ofstream f(path);
  if (f) f << (format == "text" ? prof.to_text() : prof.to_json());
  if (!f) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("profile written to %s (%zu runs, %s)\n", path.c_str(),
              prof.runs().size(), format.c_str());
  return 0;
}

/// Recorder options from --tseries-out / --tseries-window: recording is
/// enabled iff an output path was requested (the recorder stays a strict
/// no-op otherwise, keeping unflagged runs byte-identical).
obs::TimeSeriesOptions tseries_options_from(const FlagParser& flags,
                                            const char* mode) {
  DAOP_CHECK_MSG(cli_output_flag_supported("tseries-out", mode),
                 "mode '" << mode << "' missing from the --tseries-out "
                          << "support matrix (common/cli.cpp)");
  const bool want = flags.has("tseries-out");
  const double window_s = flags.get_double("tseries-window", 5.0);
  obs::TimeSeriesOptions to;
  if (want) to.window_s = window_s;
  return to;
}

/// SLO rules from --slo-rules: inline spec when the value contains '=',
/// otherwise a rules file (newlines double as rule separators); the stock
/// default_slo_rules() when the flag is absent.
std::vector<obs::SloRule> slo_rules_from(const FlagParser& flags) {
  const std::string spec = flags.get("slo-rules", "");
  if (spec.empty()) return obs::default_slo_rules();
  if (spec.find('=') != std::string::npos) return obs::parse_slo_rules(spec);
  std::ifstream f(spec);
  DAOP_CHECK_MSG(f, "cannot read --slo-rules file '" << spec << "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  std::string text = ss.str();
  std::replace(text.begin(), text.end(), '\n', ';');
  std::replace(text.begin(), text.end(), '\r', ';');
  return obs::parse_slo_rules(text);
}

/// Evaluates the SLO rules over the finalized recorder, correlates
/// incidents against its causal event log, and writes the daop-tseries/1
/// export to --tseries-out (JSON by default, sparkline report with
/// --tseries-format text). Returns 0 on success or when no output was
/// requested, 1 on I/O failure.
int write_tseries(const FlagParser& flags, const char* mode,
                  obs::TimeSeriesRecorder& rec) {
  const std::string path = flags.get("tseries-out", "");
  const std::string format = flags.get("tseries-format", "json");
  if (path.empty()) return 0;
  DAOP_CHECK_MSG(format == "json" || format == "text",
                 "unknown --tseries-format '" << format << "'");
  DAOP_CHECK_MSG(cli_output_flag_supported("tseries-out", mode),
                 "mode '" << mode << "' missing from the --tseries-out "
                          << "support matrix (common/cli.cpp)");
  rec.finalize(0.0);  // harnesses already sealed at their makespan; no-op then
  const std::vector<obs::SloRule> rules = slo_rules_from(flags);
  const obs::AlertReport report = obs::evaluate_slo_rules(rules, rec);
  const std::vector<obs::Incident> incidents =
      obs::correlate_incidents(report, rec, 2.0 * rec.window_s());
  std::ofstream f(path);
  if (f) {
    f << (format == "text" ? obs::to_tseries_text(rec, report, incidents)
                           : obs::to_tseries_json(rec, report, incidents));
  }
  if (!f) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf(
      "time series written to %s (%lld windows, %zu alert episodes, "
      "%zu incidents, %s)\n",
      path.c_str(), rec.n_windows(), report.episodes.size(), incidents.size(),
      format.c_str());
  return 0;
}

model::ModelConfig pick_model(const std::string& name) {
  if (name == "phi") return model::phi35_moe();
  if (name == "tiny") return model::tiny_mixtral();
  DAOP_CHECK_MSG(name == "mixtral", "unknown --model '" << name << "'");
  return model::mixtral_8x7b();
}

sim::PlatformSpec pick_platform(const std::string& name) {
  if (name == "a100") return sim::a100_xeon_platform();
  if (name == "4090") return sim::rtx4090_desktop_platform();
  if (name == "laptop") return sim::laptop_platform();
  DAOP_CHECK_MSG(name == "a6000", "unknown --platform '" << name << "'");
  return sim::a6000_i9_platform();
}

data::WorkloadSpec pick_dataset(const std::string& name) {
  for (const auto& w : data::all_eval_workloads()) {
    std::string lower = w.name;
    for (auto& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == name || lower.rfind(name, 0) == 0) return w;
  }
  if (name == "math") return data::math_ds();
  if (name == "sharegpt") return data::sharegpt_calibration();
  DAOP_CHECK_MSG(false, "unknown --dataset '" << name << "'");
  return data::c4();
}

eval::EngineKind pick_engine(const std::string& name) {
  if (name == "ondemand") return eval::EngineKind::MoEOnDemand;
  if (name == "deepspeed") return eval::EngineKind::DeepSpeedMII;
  if (name == "mixtral-offloading") return eval::EngineKind::MixtralOffloading;
  if (name == "pregated") return eval::EngineKind::PreGatedMoE;
  if (name == "edgemoe") return eval::EngineKind::EdgeMoE;
  if (name == "moe-infinity") return eval::EngineKind::MoEInfinity;
  if (name == "fiddler") return eval::EngineKind::Fiddler;
  DAOP_CHECK_MSG(name == "daop", "unknown --engine '" << name << "'");
  return eval::EngineKind::Daop;
}

core::DaopConfig daop_config_from(const FlagParser& flags) {
  core::DaopConfig dc;
  dc.enable_seq_allocation = !flags.get_bool("no-alloc");
  dc.enable_precalc = !flags.get_bool("no-precalc");
  dc.enable_degradation = !flags.get_bool("no-degrade");
  dc.swap_in_out = flags.get_double("swap-threshold", dc.swap_in_out);
  dc.cpu_quant_bits = flags.get_int("quant-bits", 0);
  dc.decode_realloc_interval = flags.get_int("realloc-every", 0);
  if (flags.get_bool("mispredict-fallback")) {
    dc.mispredict_policy = core::MispredictPolicy::GracefulFallback;
  }
  dc.migration_deadline_factor =
      flags.get_double("migration-deadline", dc.migration_deadline_factor);
  dc.max_migration_retries =
      flags.get_int("migration-retries", dc.max_migration_retries);
  dc.stale_precalc_factor =
      flags.get_double("stale-precalc", dc.stale_precalc_factor);
  return dc;
}

cache::ExpertCacheOptions cache_options_from(const FlagParser& flags) {
  cache::ExpertCacheOptions co;
  co.policy = cache::parse_cache_policy(flags.get("cache-policy", "frozen"));
  co.realloc_interval = flags.get_int("cache-interval", co.realloc_interval);
  return co;
}

/// Writes the dynamic-cache attribution report to --cache-report when given.
/// Under policy `frozen` the report states that the cache was disabled, so a
/// requested report file always exists. Returns 0 on success or when no
/// output was requested, 1 on I/O failure.
int write_cache_report(const FlagParser& flags, const std::string& report) {
  const std::string path = flags.get("cache-report", "");
  if (path.empty()) return 0;
  std::ofstream f(path);
  if (f) {
    f << (report.empty()
              ? "cache policy frozen: dynamic expert cache disabled\n"
              : report);
  }
  if (!f) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("cache report written to %s\n", path.c_str());
  return 0;
}

sim::HazardScenario hazards_from(const FlagParser& flags) {
  return sim::make_hazard_scenario(
      flags.get("hazard", "none"),
      flags.get_double("hazard-intensity", 0.5));
}

int cmd_speed(const FlagParser& flags) {
  eval::SpeedEvalOptions opt;
  opt.n_seqs = flags.get_int("seqs", 4);
  opt.prompt_len = flags.get_int("in", 256);
  opt.gen_len = flags.get_int("out", 256);
  opt.ecr = flags.get_double("ecr", 0.469);
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  opt.daop_config = daop_config_from(flags);
  opt.hazards = hazards_from(flags);
  opt.cache = cache_options_from(flags);
  std::string cache_report;
  opt.cache_report = &cache_report;
  obs::MetricsRegistry reg;
  opt.metrics = &reg;
  obs::Profiler prof;
  if (flags.has("profile-out")) opt.profiler = &prof;
  obs::TimeSeriesRecorder tseries(tseries_options_from(flags, "speed"),
                                  {"run"});
  const auto kind = pick_engine(flags.get("engine", "daop"));
  const auto r = eval::run_speed_eval(
      kind, pick_model(flags.get("model", "mixtral")),
      pick_platform(flags.get("platform", "a6000")),
      pick_dataset(flags.get("dataset", "c4")), opt);

  TextTable t({"metric", "value"});
  t.add_row({"engine", r.engine});
  t.add_row({"tokens/s (end-to-end)", fmt_f(r.tokens_per_s, 3)});
  t.add_row({"tokens/s (decode only)", fmt_f(r.decode_tokens_per_s, 3)});
  t.add_row({"tokens/kJ", fmt_f(r.tokens_per_kj, 3)});
  t.add_row({"avg power (W)", fmt_f(r.energy.avg_power_w, 1)});
  t.add_row({"expert migrations", std::to_string(r.counters.expert_migrations)});
  t.add_row({"GPU / CPU expert execs",
             std::to_string(r.counters.gpu_expert_execs) + " / " +
                 std::to_string(r.counters.cpu_expert_execs)});
  t.add_row({"cache hit rate",
             fmt_pct(static_cast<double>(r.counters.cache_hits) /
                     std::max(1LL, r.counters.cache_hits +
                                       r.counters.cache_misses))});
  t.add_row({"prefill swaps / decode swaps",
             std::to_string(r.counters.prefill_swaps) + " / " +
                 std::to_string(r.counters.decode_swaps)});
  t.add_row({"degradations / mispredicts",
             std::to_string(r.counters.degradations) + " / " +
                 std::to_string(r.counters.mispredictions)});
  if (opt.hazards.enabled() || r.counters.migration_retries > 0 ||
      r.counters.migration_aborts > 0 || r.counters.stale_precalcs > 0) {
    t.add_row({"migration retries / aborts",
               std::to_string(r.counters.migration_retries) + " / " +
                   std::to_string(r.counters.migration_aborts)});
    t.add_row({"stale pre-calcs", std::to_string(r.counters.stale_precalcs)});
    t.add_row({"hazard stall (s)", fmt_f(r.counters.hazard_stall_s, 3)});
  }
  if (opt.cache.enabled()) {
    t.add_row({"cache policy", cache::cache_policy_name(opt.cache.policy)});
  }
  std::printf("%s", t.render().c_str());
  // Batch mode: no streaming event loop, so the time-series export is the
  // end-of-run registry totals in one degenerate window.
  if (tseries.enabled()) {
    tseries.record_registry_totals(0, reg, 0.0);
    tseries.finalize(0.0);
  }
  const int rc = write_metrics(flags, "speed", reg);
  const int rc_prof = write_profile(flags, "speed", prof);
  const int rc_ts = write_tseries(flags, "speed", tseries);
  const int rc_cache = write_cache_report(flags, cache_report);
  if (rc != 0) return rc;
  if (rc_prof != 0) return rc_prof;
  return rc_ts != 0 ? rc_ts : rc_cache;
}

/// `serve --nodes N`: N-replica fault-tolerant cluster serving
/// (cluster/serving.hpp). Shares the workload-plan flags with single-node
/// serve; per-node faults come from the node-scoped --hazard presets.
int cmd_serve_cluster(const FlagParser& flags, int nodes) {
  cluster::ClusterServingOptions opt;
  opt.n_nodes = nodes;
  opt.base.arrival_rate_rps = flags.get_double("rate", 0.02);
  opt.base.n_requests = flags.get_int("requests", 24);
  opt.base.ecr = flags.get_double("ecr", 0.469);
  opt.base.seed = static_cast<std::uint64_t>(flags.get_int("seed", 99));
  opt.base.daop_config = daop_config_from(flags);
  opt.base.slo_ttft_s = flags.get_double("slo-ttft", 0.0);
  opt.base.slo_latency_s = flags.get_double("slo-latency", 0.0);
  opt.base.priority_every = flags.get_int("priority-every", 0);
  opt.base.priority_deadline_s = flags.get_double("priority-deadline", 0.0);
  const int fixed_in = flags.get_int("in", 0);
  if (fixed_in > 0) opt.base.min_prompt = opt.base.max_prompt = fixed_in;
  const int fixed_out = flags.get_int("out", 0);
  if (fixed_out > 0) opt.base.min_gen = opt.base.max_gen = fixed_out;
  opt.node_hazards = hazards_from(flags);
  opt.cluster.max_concurrent_per_node = flags.get_int("max-concurrent", 4);
  opt.cluster.dispatch =
      cluster::parse_dispatch_policy(flags.get("dispatch", "round-robin"));
  opt.cluster.health.enabled = flags.get_bool("health");
  opt.cluster.health.probe_interval_s =
      flags.get_double("health-interval", 0.25);
  opt.cluster.health.eject_after = flags.get_int("health-eject", 3);
  opt.cluster.health.readmit_after = flags.get_int("health-readmit", 2);
  opt.cluster.health.slow_probe_s = flags.get_double("health-slow", 0.0);
  opt.cluster.failover_budget = flags.get_int("failover-budget", 1);
  opt.cluster.failover_backoff_s = flags.get_double("failover-backoff", 0.01);
  opt.cluster.service_estimate_s = flags.get_double("service-estimate", 0.0);
  opt.cluster.deadline_s = flags.get_double("deadline", 0.0);
  opt.cluster.hedge_ttft_threshold_s = flags.get_double("hedge-ttft", 0.0);
  opt.cluster.degrade.enabled = flags.get_bool("degrade");
  const double degrade_window = flags.get_double("degrade-window", 0.0);
  if (degrade_window > 0.0) opt.cluster.degrade.window_s = degrade_window;
  opt.cluster.crash_node = flags.get_int("crash-node", -1);
  opt.cluster.crash_time_s = flags.get_double("crash-at", 0.0);
  opt.cluster.cache = cache_options_from(flags);
  opt.cluster.checkpoint.every_steps = flags.get_int("ckpt-every", 0);
  opt.cluster.checkpoint.every_s = flags.get_double("ckpt-interval", 0.0);
  opt.cluster.checkpoint.keep_generations = flags.get_int("ckpt-keep", 2);
  obs::MetricsRegistry reg;
  opt.base.metrics = &reg;
  obs::SpanTracer tracer;
  const std::string trace_json = flags.get("out-json", "");
  if (!trace_json.empty()) opt.base.tracer = &tracer;
  obs::Profiler prof;
  if (flags.has("profile-out")) opt.base.profiler = &prof;
  // Channel convention (ClusterOptions::tseries): one channel per node plus
  // the trailing router-level "cluster" channel.
  std::vector<std::string> ts_channels;
  for (int i = 0; i < nodes; ++i) {
    ts_channels.push_back("node" + std::to_string(i));
  }
  ts_channels.push_back("cluster");
  obs::TimeSeriesRecorder tseries(
      tseries_options_from(flags, "serve-cluster"), std::move(ts_channels));
  if (tseries.enabled()) opt.base.tseries = &tseries;
  const auto r = cluster::run_cluster_serving_eval(
      pick_engine(flags.get("engine", "daop")),
      pick_model(flags.get("model", "mixtral")),
      pick_platform(flags.get("platform", "a6000")),
      pick_dataset(flags.get("dataset", "sharegpt")), opt);

  TextTable t({"metric", "mean", "p50", "p90", "p99", "95% CI of mean"});
  auto row = [&](const char* name, const Summary& s) {
    t.add_row({name, fmt_f(s.mean, 2) + " s", fmt_f(s.p50, 2),
               fmt_f(s.p90, 2), fmt_f(s.p99, 2),
               fmt_f(s.mean - s.ci95, 2) + " .. " + fmt_f(s.mean + s.ci95, 2)});
  };
  std::printf(
      "engine: %s   requests: %d   rate: %s rps   dispatch: %s   "
      "health: %s\n",
      r.engine.c_str(), r.requests,
      fmt_f(opt.base.arrival_rate_rps, 3).c_str(),
      cluster::dispatch_policy_name(opt.cluster.dispatch),
      opt.cluster.health.enabled ? "on" : "off");
  row("time to first token", r.ttft_s);
  row("time per output token", r.tpot_s);
  row("queue wait", r.queue_wait_s);
  row("request latency", r.latency_s);
  std::printf("%s", t.render().c_str());
  std::printf("throughput: %s tokens/s   makespan: %s s\n",
              fmt_f(r.throughput_tps, 2).c_str(),
              fmt_f(r.makespan_s, 2).c_str());
  std::printf(
      "served: %d/%d   shed: %d (node_lost %lld, deadline %lld, degraded "
      "%lld)   SLO violations: %d (%s)\n",
      r.served, r.requests, r.shed, r.shed_node_lost, r.shed_deadline,
      r.shed_degraded, r.slo_violations, fmt_pct(r.slo_violation_rate).c_str());
  std::printf(
      "crashes: %lld   failovers: %lld (crash %lld, dead-dispatch %lld)   "
      "replayed tokens: %lld\n",
      r.cluster.crashes, r.cluster.failovers_total(),
      r.cluster.failovers_node_crash, r.cluster.failovers_dead_dispatch,
      r.cluster.replayed_tokens);
  if (opt.cluster.health.enabled) {
    std::printf("health: ejections %lld   readmissions %lld\n",
                r.cluster.ejections, r.cluster.readmissions);
  }
  if (opt.cluster.checkpoint.enabled()) {
    std::printf(
        "recovery: checkpoints %lld (%s)   torn/corrupt writes %lld/%lld   "
        "torn rejected %lld\n",
        r.recovery.checkpoints_written,
        fmt_bytes(static_cast<double>(r.recovery.checkpoint_bytes)).c_str(),
        r.recovery.torn_writes, r.recovery.corrupt_writes,
        r.recovery.torn_rejected);
    std::printf(
        "recovery: lost %lld = restored %lld + replayed %lld + shed %lld   "
        "fallbacks (no-ckpt %lld, invalid %lld)   restored tokens %lld\n",
        r.recovery.lost_sessions, r.recovery.recovered_restored,
        r.recovery.recovered_replayed, r.recovery.recovered_shed,
        r.recovery.fallbacks_no_checkpoint, r.recovery.fallbacks_invalid,
        r.recovery.restored_tokens);
  }
  if (opt.cluster.hedge_ttft_threshold_s > 0.0) {
    std::printf("hedges: issued %lld   won %lld   cancelled %lld\n",
                r.cluster.hedges, r.cluster.hedge_wins,
                r.cluster.hedge_cancels);
  }
  if (opt.cluster.cache.enabled()) {
    std::printf(
        "cache (%s): fills %lld   evictions %lld   refusals %lld   "
        "aborts %lld   moved %s\n",
        cache::cache_policy_name(opt.cluster.cache.policy), r.cache_fills,
        r.cache_evictions, r.cache_refusals, r.cache_aborts,
        fmt_bytes(r.cache_bytes_moved).c_str());
  }
  for (int i = 0; i < opt.n_nodes; ++i) {
    const char* const state_names[] = {"crashed", "ejected", "in-service"};
    std::printf(
        "node %d: dispatched %lld   served %lld   %s\n", i,
        r.cluster.node_dispatched[static_cast<std::size_t>(i)],
        r.cluster.node_served[static_cast<std::size_t>(i)],
        state_names[r.cluster.node_final_state[static_cast<std::size_t>(i)]]);
  }
  if (!trace_json.empty()) {
    std::string requests_json = "\"daopRequests\":[";
    for (std::size_t i = 0; i < r.request_log.size(); ++i) {
      const auto& e = r.request_log[i];
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"id\":%lld,\"arrival\":%.6f,\"outcome\":\"%s\","
                    "\"failovers\":%lld,\"restores\":%lld,"
                    "\"recovery\":\"%s\"}",
                    i ? "," : "", e.id, e.arrival, e.outcome.c_str(),
                    e.retries, e.restores, e.recovery.c_str());
      requests_json += buf;
    }
    requests_json += "]";
    const sim::Timeline no_timeline;
    if (sim::write_chrome_trace(no_timeline, trace_json, &tracer,
                                requests_json)) {
      std::printf("chrome trace written to %s (open in chrome://tracing)\n",
                  trace_json.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", trace_json.c_str());
      return 1;
    }
  }
  // Clusters run one cache per node; the report here is the cluster-wide
  // totals (per-node detail lives in the daop_cache_* metric families).
  std::string cache_report;
  if (opt.cluster.cache.enabled()) {
    TextTable ct({"cluster cache total", "value"});
    ct.add_row({"policy", cache::cache_policy_name(opt.cluster.cache.policy)});
    ct.add_row({"fills", std::to_string(r.cache_fills)});
    ct.add_row({"evictions", std::to_string(r.cache_evictions)});
    ct.add_row({"pin refusals", std::to_string(r.cache_refusals)});
    ct.add_row({"migration aborts", std::to_string(r.cache_aborts)});
    ct.add_row({"bytes moved", fmt_bytes(r.cache_bytes_moved)});
    cache_report = ct.render();
  }
  const int rc = write_metrics(flags, "serve-cluster", reg);
  const int rc_prof = write_profile(flags, "serve-cluster", prof);
  const int rc_ts = write_tseries(flags, "serve-cluster", tseries);
  const int rc_cache = write_cache_report(flags, cache_report);
  if (rc != 0) return rc;
  if (rc_prof != 0) return rc_prof;
  return rc_ts != 0 ? rc_ts : rc_cache;
}

int cmd_serve(const FlagParser& flags) {
  const int nodes = flags.get_int("nodes", 0);
  if (nodes > 0) return cmd_serve_cluster(flags, nodes);
  eval::ServingOptions opt;
  opt.arrival_rate_rps = flags.get_double("rate", 0.02);
  opt.n_requests = flags.get_int("requests", 24);
  opt.ecr = flags.get_double("ecr", 0.469);
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed", 99));
  opt.daop_config = daop_config_from(flags);
  opt.hazards = hazards_from(flags);
  opt.request_timeout_s = flags.get_double("timeout", 0.0);
  opt.max_request_retries = flags.get_int("request-retries", 0);
  opt.retry_backoff_s = flags.get_double("retry-backoff", 0.5);
  opt.slo_ttft_s = flags.get_double("slo-ttft", 0.0);
  opt.slo_latency_s = flags.get_double("slo-latency", 0.0);
  opt.max_concurrent = flags.get_int("max-concurrent", 1);
  opt.overload.admission =
      eval::parse_admission_policy(flags.get("admission", "fifo"));
  opt.overload.queue_capacity = flags.get_int("queue-cap", 0);
  opt.overload.deadline_s = flags.get_double("deadline", 0.0);
  opt.overload.service_estimate_s = flags.get_double("service-estimate", 0.0);
  opt.overload.preempt = flags.get_bool("preempt");
  opt.overload.degrade.enabled = flags.get_bool("degrade");
  const double degrade_window = flags.get_double("degrade-window", 0.0);
  if (degrade_window > 0.0) opt.overload.degrade.window_s = degrade_window;
  opt.priority_every = flags.get_int("priority-every", 0);
  opt.priority_deadline_s = flags.get_double("priority-deadline", 0.0);
  opt.cache = cache_options_from(flags);
  std::string cache_report;
  opt.cache_report = &cache_report;
  const int fixed_in = flags.get_int("in", 0);
  if (fixed_in > 0) opt.min_prompt = opt.max_prompt = fixed_in;
  const int fixed_out = flags.get_int("out", 0);
  if (fixed_out > 0) opt.min_gen = opt.max_gen = fixed_out;
  obs::MetricsRegistry reg;
  opt.metrics = &reg;
  obs::SpanTracer tracer;
  const std::string trace_json = flags.get("out-json", "");
  if (!trace_json.empty()) opt.tracer = &tracer;
  obs::Profiler prof;
  if (flags.has("profile-out")) opt.profiler = &prof;
  obs::TimeSeriesRecorder tseries(tseries_options_from(flags, "serve"),
                                  {"serving"});
  if (tseries.enabled()) opt.tseries = &tseries;
  const auto r = eval::run_serving_eval(
      pick_engine(flags.get("engine", "daop")),
      pick_model(flags.get("model", "mixtral")),
      pick_platform(flags.get("platform", "a6000")),
      pick_dataset(flags.get("dataset", "sharegpt")), opt);

  TextTable t({"metric", "mean", "p50", "p90", "p99", "95% CI of mean"});
  auto row = [&](const char* name, const Summary& s) {
    t.add_row({name, fmt_f(s.mean, 2) + " s", fmt_f(s.p50, 2),
               fmt_f(s.p90, 2), fmt_f(s.p99, 2),
               fmt_f(s.mean - s.ci95, 2) + " .. " + fmt_f(s.mean + s.ci95, 2)});
  };
  const std::string sched =
      opt.max_concurrent > 1
          ? "continuous batching x" + std::to_string(opt.max_concurrent)
          : "sequential";
  std::printf("engine: %s   requests: %d   rate: %s rps   scheduler: %s\n",
              r.engine.c_str(), r.requests,
              fmt_f(opt.arrival_rate_rps, 3).c_str(), sched.c_str());
  row("time to first token", r.ttft_s);
  row("time per output token", r.tpot_s);
  row("queue wait", r.queue_wait_s);
  row("request latency", r.latency_s);
  std::printf("%s", t.render().c_str());
  std::printf("throughput: %s tokens/s   server busy: %s\n",
              fmt_f(r.throughput_tps, 2).c_str(),
              fmt_pct(r.busy_fraction).c_str());
  if (opt.hazards.enabled() || opt.request_timeout_s > 0.0 ||
      opt.slo_ttft_s > 0.0 || opt.slo_latency_s > 0.0) {
    std::printf(
        "served: %d/%d   dropped: %d   client retries: %lld   "
        "SLO violations: %d (%s)\n",
        r.served, r.requests, r.dropped, r.request_retries, r.slo_violations,
        fmt_pct(r.slo_violation_rate).c_str());
    std::printf(
        "hazard stall: %s s   migration retries/aborts: %lld/%lld   "
        "stale pre-calcs: %lld\n",
        fmt_f(r.counters.hazard_stall_s, 3).c_str(),
        r.counters.migration_retries, r.counters.migration_aborts,
        r.counters.stale_precalcs);
  }
  if (opt.overload.enabled()) {
    std::printf(
        "admission: %s   shed: %d (queue_full %lld, deadline %lld, "
        "degraded %lld)   preemptions: %lld\n",
        eval::admission_policy_name(opt.overload.admission), r.shed,
        r.shed_queue_full, r.shed_deadline, r.shed_degraded, r.preemptions);
    if (opt.overload.degrade.enabled) {
      std::printf(
          "degradation: steps down/up %lld/%lld   peak level %d   "
          "final level %d\n",
          r.degrade_steps_down, r.degrade_steps_up, r.degrade_peak_level,
          r.degrade_final_level);
    }
  }
  if (opt.cache.enabled()) {
    std::printf(
        "cache (%s): fills %lld   evictions %lld   refusals %lld   "
        "aborts %lld   moved %s\n",
        cache::cache_policy_name(opt.cache.policy), r.cache_fills,
        r.cache_evictions, r.cache_refusals, r.cache_aborts,
        fmt_bytes(r.cache_bytes_moved).c_str());
  }
  if (!trace_json.empty()) {
    // Per-request outcome log, embedded as an extra top-level member so
    // overload behaviour (retries, drop/shed reasons, preemptions) is
    // inspectable offline next to the spans.
    std::string requests_json = "\"daopRequests\":[";
    for (std::size_t i = 0; i < r.request_log.size(); ++i) {
      const auto& e = r.request_log[i];
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"id\":%lld,\"arrival\":%.6f,\"outcome\":\"%s\","
                    "\"retries\":%lld,\"preempted\":%lld}",
                    i ? "," : "", e.id, e.arrival, e.outcome.c_str(),
                    e.retries, e.preempted);
      requests_json += buf;
    }
    requests_json += "]";
    // Serving spans (queue wait, per-request service, engine spans shifted
    // onto the serving clock) live on the tracer's tracks; there is no
    // single recorded timeline across requests to merge in.
    const sim::Timeline no_timeline;
    if (sim::write_chrome_trace(no_timeline, trace_json, &tracer,
                                requests_json)) {
      std::printf("chrome trace written to %s (open in chrome://tracing)\n",
                  trace_json.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", trace_json.c_str());
      return 1;
    }
  }
  const int rc = write_metrics(flags, "serve", reg);
  const int rc_prof = write_profile(flags, "serve", prof);
  const int rc_ts = write_tseries(flags, "serve", tseries);
  const int rc_cache = write_cache_report(flags, cache_report);
  if (rc != 0) return rc;
  if (rc_prof != 0) return rc_prof;
  return rc_ts != 0 ? rc_ts : rc_cache;
}

int cmd_accuracy(const FlagParser& flags) {
  const model::FunctionalModel fm(
      model::tiny_mixtral(),
      static_cast<std::uint64_t>(flags.get_int("model-seed", 1)));
  eval::AccuracyEvalOptions opt;
  opt.n_episodes = flags.get_int("episodes", 16);
  opt.prompt_len = flags.get_int("in", 24);
  opt.gen_len = flags.get_int("out", 32);
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const double ecr = flags.get_double("ecr", 0.375);
  const auto m = eval::evaluate_daop_accuracy(
      fm, pick_dataset(flags.get("dataset", "c4")), daop_config_from(flags),
      ecr, opt);

  TextTable t({"metric", "value"});
  t.add_row({"episodes", std::to_string(m.episodes)});
  t.add_row({"token agreement (teacher-forced)",
             fmt_pct(m.token_agreement, 2)});
  t.add_row({"exact match (free-running)", fmt_pct(m.exact_match, 2)});
  t.add_row({"ROUGE-1 / ROUGE-2",
             fmt_f(m.rouge1 * 100, 2) + " / " + fmt_f(m.rouge2 * 100, 2)});
  t.add_row({"exact / stale / degraded execs",
             std::to_string(m.stats.exact_execs) + " / " +
                 std::to_string(m.stats.stale_input_execs) + " / " +
                 std::to_string(m.stats.degradations)});
  t.add_row({"prefill swaps", std::to_string(m.stats.prefill_swaps)});
  std::printf("%s", t.render().c_str());
  return 0;
}

int cmd_observe(const FlagParser& flags) {
  const auto spec = pick_dataset(flags.get("dataset", "c4"));
  const auto cfg = pick_model(flags.get("model", "mixtral"));
  const int n_seqs = flags.get_int("seqs", 64);
  const data::TraceGenerator gen(spec, cfg.n_layers, cfg.n_experts, cfg.top_k,
                                 static_cast<std::uint64_t>(flags.get_int("seed", 7)));
  TextTable t({"statistic", "value"});
  t.add_row({"prefill/decode similarity (Table II)",
             fmt_pct(eval::avg_prefill_decode_similarity(gen, n_seqs), 2)});
  t.add_row({"gate-ahead prediction accuracy (Fig. 5)",
             fmt_pct(eval::avg_prediction_accuracy(gen, n_seqs), 2)});
  t.add_row({"decode window similarity (§VI-B)",
             fmt_pct(eval::avg_decode_window_similarity(gen, n_seqs, 15), 2)});
  std::printf("workload: %s, %d sequences on %s\n%s", spec.name.c_str(),
              n_seqs, cfg.name.c_str(), t.render().c_str());
  return 0;
}

int cmd_timeline(const FlagParser& flags) {
  const auto cfg = pick_model(flags.get("model", "mixtral"));
  const auto platform = pick_platform(flags.get("platform", "a6000"));
  const sim::CostModel cm(platform);
  const model::OpCosts costs(cfg, cm);
  const auto spec = pick_dataset(flags.get("dataset", "c4"));
  const data::TraceGenerator gen(spec, cfg.n_layers, cfg.n_experts, cfg.top_k,
                                 static_cast<std::uint64_t>(flags.get_int("seed", 7)));
  const auto trace = gen.generate(0, flags.get_int("in", 32),
                                  flags.get_int("out", 2));

  const data::TraceGenerator calib_gen(data::sharegpt_calibration(),
                                       cfg.n_layers, cfg.n_experts, cfg.top_k,
                                       0xCA11Bu);
  const auto calib = cache::calibrate_activation_counts(calib_gen, 16);
  const auto placement = cache::init_placement_calibrated(
      cfg.n_layers, cfg.n_experts, flags.get_double("ecr", 0.469), calib);

  auto engine = eval::make_engine(pick_engine(flags.get("engine", "daop")),
                                  costs, daop_config_from(flags));
  sim::FaultModel fault(hazards_from(flags),
                        static_cast<std::uint64_t>(flags.get_int("seed", 7)) ^
                            0xFA017ULL);
  if (fault.enabled()) engine->set_fault_model(&fault);
  obs::SpanTracer tracer;
  engine->set_tracer(&tracer);
  obs::Profiler prof;
  if (flags.has("profile-out")) engine->set_profiler(&prof);
  sim::Timeline tl;
  tl.set_record_intervals(true);
  const auto r = engine->run(trace, placement, &tl);
  std::printf("%s: %s tokens/s\n", r.engine.c_str(),
              fmt_f(r.tokens_per_s, 2).c_str());
  std::printf("%s", sim::render_gantt(tl, r.prefill_s,
                                      std::min(r.total_s, r.prefill_s +
                                                              0.25 * r.decode_s),
                                      100)
                        .c_str());
  const std::string json = flags.get("out-json", "");
  if (!json.empty()) {
    if (sim::write_chrome_trace(tl, json, &tracer)) {
      std::printf("chrome trace written to %s (open in chrome://tracing)\n",
                  json.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json.c_str());
      return 1;
    }
  }
  obs::MetricsRegistry reg;
  engines::record_run_metrics(reg, r);
  obs::TimeSeriesRecorder tseries(tseries_options_from(flags, "timeline"),
                                  {"run"});
  if (tseries.enabled()) {
    // Totals recorded at the run end; earlier grid windows seal empty.
    tseries.record_registry_totals(0, reg, tl.span());
    tseries.finalize(tl.span());
  }
  const int rc = write_metrics(flags, "timeline", reg);
  const int rc_prof = write_profile(flags, "timeline", prof);
  const int rc_ts = write_tseries(flags, "timeline", tseries);
  if (rc != 0) return rc;
  return rc_prof != 0 ? rc_prof : rc_ts;
}

int cmd_dump(const FlagParser& flags) {
  const auto cfg = pick_model(flags.get("model", "mixtral"));
  const auto spec = pick_dataset(flags.get("dataset", "c4"));
  const data::TraceGenerator gen(spec, cfg.n_layers, cfg.n_experts, cfg.top_k,
                                 static_cast<std::uint64_t>(flags.get_int("seed", 7)));
  const auto trace = gen.generate(flags.get_int("seq", 0),
                                  flags.get_int("in", 64),
                                  flags.get_int("out", 64));
  const std::string path = flags.get("path", "");
  DAOP_CHECK_MSG(!path.empty(), "dump requires --path");
  data::save_trace_file(trace, path);
  std::printf("wrote %s (%d layers x [%d prefill + %d decode] tokens)\n",
              path.c_str(), trace.n_layers(), trace.prompt_len, trace.gen_len);
  return 0;
}

int cmd_compare(const FlagParser& flags) {
  eval::SpeedEvalOptions opt;
  opt.n_seqs = flags.get_int("seqs", 4);
  opt.prompt_len = flags.get_int("in", 256);
  opt.gen_len = flags.get_int("out", 256);
  opt.ecr = flags.get_double("ecr", 0.469);
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  opt.daop_config = daop_config_from(flags);
  opt.hazards = hazards_from(flags);
  const auto cfg = pick_model(flags.get("model", "mixtral"));
  const auto platform = pick_platform(flags.get("platform", "a6000"));
  const auto workload = pick_dataset(flags.get("dataset", "c4"));
  const bool extended = flags.get_bool("extended");
  obs::MetricsRegistry reg;
  opt.metrics = &reg;
  obs::Profiler prof;
  if (flags.has("profile-out")) opt.profiler = &prof;
  obs::TimeSeriesRecorder tseries(tseries_options_from(flags, "compare"),
                                  {"run"});

  TextTable t({"engine", "tokens/s", "tokens/kJ", "hit rate"});
  for (auto kind : extended ? eval::extended_baseline_engines()
                            : eval::paper_baseline_engines()) {
    const auto r = eval::run_speed_eval(kind, cfg, platform, workload, opt);
    t.add_row({r.engine, fmt_f(r.tokens_per_s, 2), fmt_f(r.tokens_per_kj, 2),
               fmt_pct(static_cast<double>(r.counters.cache_hits) /
                       std::max(1LL, r.counters.cache_hits +
                                         r.counters.cache_misses))});
  }
  std::printf("%s on %s, %s traffic, ECR %s, in/out %d/%d\n",
              cfg.name.c_str(), platform.name.c_str(), workload.name.c_str(),
              fmt_pct(opt.ecr).c_str(), opt.prompt_len, opt.gen_len);
  std::printf("%s", t.render().c_str());
  if (tseries.enabled()) {
    tseries.record_registry_totals(0, reg, 0.0);
    tseries.finalize(0.0);
  }
  const int rc = write_metrics(flags, "compare", reg);
  const int rc_prof = write_profile(flags, "compare", prof);
  const int rc_ts = write_tseries(flags, "compare", tseries);
  if (rc != 0) return rc;
  return rc_prof != 0 ? rc_prof : rc_ts;
}

int cmd_replay(const FlagParser& flags) {
  const std::string path = flags.get("path", "");
  DAOP_CHECK_MSG(!path.empty(), "replay requires --path");
  const data::SequenceTrace trace = data::load_trace_file(path);

  // The replayed trace fixes the model's routing topology; only per-op
  // costs come from the chosen model config, which must match.
  model::ModelConfig cfg = pick_model(flags.get("model", "mixtral"));
  DAOP_CHECK_MSG(cfg.n_layers == trace.n_layers() &&
                     cfg.n_experts == trace.n_experts &&
                     cfg.top_k == trace.top_k,
                 "trace topology (" << trace.n_layers() << " layers, "
                                    << trace.n_experts
                                    << " experts) does not match --model");
  const sim::CostModel cm(pick_platform(flags.get("platform", "a6000")));
  const model::OpCosts costs(cfg, cm);

  const data::TraceGenerator calib_gen(data::sharegpt_calibration(),
                                       cfg.n_layers, cfg.n_experts, cfg.top_k,
                                       0xCA11Bu);
  const auto calib = cache::calibrate_activation_counts(calib_gen, 16);
  const auto placement = cache::init_placement_calibrated(
      cfg.n_layers, cfg.n_experts, flags.get_double("ecr", 0.469), calib);

  auto engine = eval::make_engine(pick_engine(flags.get("engine", "daop")),
                                  costs, daop_config_from(flags));
  sim::FaultModel fault(hazards_from(flags),
                        static_cast<std::uint64_t>(flags.get_int("seed", 7)) ^
                            0xFA017ULL);
  if (fault.enabled()) engine->set_fault_model(&fault);
  const auto r = engine->run(trace, placement);
  std::printf("%s on %s: %s tokens/s end-to-end, %s tokens/kJ\n",
              r.engine.c_str(), path.c_str(), fmt_f(r.tokens_per_s, 3).c_str(),
              fmt_f(r.tokens_per_kj, 3).c_str());
  std::printf("prefill %s s, decode %s s, hits %lld, misses %lld\n",
              fmt_f(r.prefill_s, 3).c_str(), fmt_f(r.decode_s, 3).c_str(),
              r.counters.cache_hits, r.counters.cache_misses);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const FlagParser flags(argc, argv);
    const std::string& cmd = flags.command();
    int rc = 0;
    if (cmd == "speed") {
      rc = cmd_speed(flags);
    } else if (cmd == "serve") {
      rc = cmd_serve(flags);
    } else if (cmd == "accuracy") {
      rc = cmd_accuracy(flags);
    } else if (cmd == "observe") {
      rc = cmd_observe(flags);
    } else if (cmd == "timeline") {
      rc = cmd_timeline(flags);
    } else if (cmd == "dump") {
      rc = cmd_dump(flags);
    } else if (cmd == "replay") {
      rc = cmd_replay(flags);
    } else if (cmd == "compare") {
      rc = cmd_compare(flags);
    } else {
      return usage();
    }
    for (const auto& name : flags.unused()) {
      std::fprintf(stderr, "error: unknown flag --%s\n", name.c_str());
      rc = 2;
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
